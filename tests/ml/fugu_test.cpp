#include "ml/fugu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "abr/abr_factory.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/expects.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::ml {
namespace {

std::vector<sim::SessionLog> training_logs(std::size_t count,
                                           std::size_t chunks = 80) {
  video::VideoConfig vcfg = video::default_video_config();
  vcfg.duration_s = double(chunks) * vcfg.chunk_duration_s;
  const video::Video video(vcfg);
  const auto traces =
      trace::make_traces(trace::TraceFamily::kWideRange, count, 71);
  std::vector<sim::SessionLog> logs;
  for (const auto& t : traces) {
    auto abr = abr::make_abr("mpc");
    const net::NetworkPath path(t, 0.08);
    logs.push_back(sim::run_session(video, *abr, path).log);
  }
  return logs;
}

FuguConfig fast_config() {
  FuguConfig cfg;
  cfg.epochs = 15;
  cfg.hidden = {32, 32};
  return cfg;
}

TEST(Fugu, RequiresTrainingBeforePrediction) {
  const FuguNN fugu(fast_config());
  EXPECT_FALSE(fugu.trained());
  const std::vector<double> sizes(8, 1e5), times(8, 0.5);
  EXPECT_THROW(fugu.predict_download_time_s(sizes, times, 1e5),
               veritas::ContractViolation);
}

TEST(Fugu, TrainsAndPredictsPositiveTimes) {
  FuguNN fugu(fast_config());
  const auto logs = training_logs(6);
  fugu.fit(logs);
  EXPECT_TRUE(fugu.trained());
  const std::vector<double> sizes(8, 2.5e5), times(8, 0.8);
  const double d = fugu.predict_download_time_s(sizes, times, 2.5e5);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 60.0);
}

TEST(Fugu, InDistributionAccuracy) {
  // On held-out MPC sessions (same policy as training) Fugu should be a
  // decent associational predictor — that's the paper's premise.
  FuguNN fugu(fast_config());
  auto logs = training_logs(10);
  const sim::SessionLog held_out = logs.back();
  logs.pop_back();
  fugu.fit(logs);
  double abs_err = 0.0, truth_sum = 0.0;
  int count = 0;
  for (std::size_t n = 8; n < held_out.size(); ++n) {
    const double predicted = fugu.predict_chunk(held_out, n);
    abs_err += std::abs(predicted - held_out.chunks[n].download_time_s());
    truth_sum += held_out.chunks[n].download_time_s();
    ++count;
  }
  // Mean absolute error under half of the mean download time.
  EXPECT_LT(abs_err / count, 0.5 * truth_sum / count);
}

TEST(Fugu, PredictChunkMatchesManualFeatures) {
  FuguNN fugu(fast_config());
  const auto logs = training_logs(4);
  fugu.fit(logs);
  const sim::SessionLog& log = logs[0];
  const std::size_t n = 20;
  std::vector<double> sizes, times;
  for (std::size_t k = n - 8; k < n; ++k) {
    sizes.push_back(log.chunks[k].size_bytes);
    times.push_back(log.chunks[k].download_time_s());
  }
  EXPECT_NEAR(fugu.predict_chunk(log, n),
              fugu.predict_download_time_s(sizes, times,
                                           log.chunks[n].size_bytes),
              1e-12);
}

TEST(Fugu, ShortHistoryIsPadded) {
  FuguNN fugu(fast_config());
  const auto logs = training_logs(4);
  fugu.fit(logs);
  const std::vector<double> sizes(2, 1e5), times(2, 0.4);
  EXPECT_GT(fugu.predict_download_time_s(sizes, times, 1e5), 0.0);
}

TEST(Fugu, DeterministicTraining) {
  const auto logs = training_logs(4);
  FuguNN a(fast_config()), b(fast_config());
  a.fit(logs);
  b.fit(logs);
  const std::vector<double> sizes(8, 2e5), times(8, 0.6);
  EXPECT_DOUBLE_EQ(a.predict_download_time_s(sizes, times, 3e5),
                   b.predict_download_time_s(sizes, times, 3e5));
}

TEST(Fugu, LargerChunksPredictLongerTimes) {
  FuguNN fugu(fast_config());
  fugu.fit(training_logs(8));
  const std::vector<double> sizes(8, 2.5e5), times(8, 0.7);
  const double small = fugu.predict_download_time_s(sizes, times, 5e4);
  const double large = fugu.predict_download_time_s(sizes, times, 1e6);
  EXPECT_GT(large, small);
}

TEST(Fugu, RejectsEmptyTraining) {
  FuguNN fugu(fast_config());
  const std::vector<sim::SessionLog> empty;
  EXPECT_THROW(fugu.fit(empty), veritas::ContractViolation);
}

TEST(Fugu, PredictChunkBoundsChecked) {
  FuguNN fugu(fast_config());
  const auto logs = training_logs(4);
  fugu.fit(logs);
  EXPECT_THROW(fugu.predict_chunk(logs[0], 0), veritas::ContractViolation);
  EXPECT_THROW(fugu.predict_chunk(logs[0], logs[0].size()),
               veritas::ContractViolation);
}

}  // namespace
}  // namespace veritas::ml
