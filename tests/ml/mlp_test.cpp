#include "ml/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/expects.hpp"
#include "util/rng.hpp"

namespace veritas::ml {
namespace {

MlpConfig tiny_config() {
  MlpConfig cfg;
  cfg.layer_sizes = {3, 8, 2};
  cfg.seed = 5;
  return cfg;
}

TEST(Mlp, ShapeAccessors) {
  const Mlp mlp(tiny_config());
  EXPECT_EQ(mlp.input_size(), 3u);
  EXPECT_EQ(mlp.output_size(), 2u);
}

TEST(Mlp, RejectsBadConfig) {
  MlpConfig cfg;
  cfg.layer_sizes = {3};
  EXPECT_THROW(Mlp{cfg}, veritas::ContractViolation);
  cfg.layer_sizes = {3, 0, 1};
  EXPECT_THROW(Mlp{cfg}, veritas::ContractViolation);
}

TEST(Mlp, DeterministicInitialization) {
  const Mlp a(tiny_config()), b(tiny_config());
  const std::vector<double> x{0.1, -0.2, 0.3};
  EXPECT_EQ(a.predict(x), b.predict(x));
}

TEST(Mlp, PredictRejectsWrongWidth) {
  const Mlp mlp(tiny_config());
  const std::vector<double> x{0.1};
  EXPECT_THROW(mlp.predict(x), veritas::ContractViolation);
}

TEST(Mlp, ParameterRoundTrip) {
  Mlp mlp(tiny_config());
  const std::vector<double> params = mlp.parameters();
  std::vector<double> doubled = params;
  for (double& p : doubled) p *= 2.0;
  mlp.set_parameters(doubled);
  EXPECT_EQ(mlp.parameters(), doubled);
  mlp.set_parameters(params);
  EXPECT_EQ(mlp.parameters(), params);
}

// The critical test: analytic gradients match finite differences.
TEST(Mlp, GradientMatchesFiniteDifferences) {
  Mlp mlp(tiny_config());
  util::Rng rng(7);
  const std::vector<double> x{0.4, -0.7, 1.2};
  const std::vector<double> target{0.3, -0.5};

  const std::vector<double> analytic = mlp.parameter_gradient(x, target);
  const std::vector<double> params = mlp.parameters();
  ASSERT_EQ(analytic.size(), params.size());

  auto loss_at = [&](const std::vector<double>& p) {
    Mlp probe(tiny_config());
    probe.set_parameters(p);
    const auto out = probe.predict(x);
    double loss = 0.0;
    for (std::size_t o = 0; o < out.size(); ++o) {
      const double d = out[o] - target[o];
      loss += d * d / double(out.size());
    }
    return loss;
  };

  const double eps = 1e-6;
  double max_rel_err = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    std::vector<double> up = params, down = params;
    up[i] += eps;
    down[i] -= eps;
    const double numeric = (loss_at(up) - loss_at(down)) / (2.0 * eps);
    const double denom = std::max({std::abs(numeric), std::abs(analytic[i]), 1e-6});
    max_rel_err = std::max(max_rel_err,
                           std::abs(numeric - analytic[i]) / denom);
  }
  EXPECT_LT(max_rel_err, 1e-4);
}

TEST(Mlp, GradientCheckDeeperNetwork) {
  MlpConfig cfg;
  cfg.layer_sizes = {4, 6, 6, 1};
  cfg.seed = 11;
  Mlp mlp(cfg);
  const std::vector<double> x{0.1, 0.2, -0.3, 0.5};
  const std::vector<double> target{1.5};
  const auto analytic = mlp.parameter_gradient(x, target);
  const auto params = mlp.parameters();
  const double eps = 1e-6;
  for (std::size_t i = 0; i < params.size(); i += 7) {  // sample every 7th
    auto up = params, down = params;
    up[i] += eps;
    down[i] -= eps;
    Mlp probe_up(cfg), probe_down(cfg);
    probe_up.set_parameters(up);
    probe_down.set_parameters(down);
    const double lu = std::pow(probe_up.predict(x)[0] - target[0], 2);
    const double ld = std::pow(probe_down.predict(x)[0] - target[0], 2);
    const double numeric = (lu - ld) / (2.0 * eps);
    EXPECT_NEAR(numeric, analytic[i],
                1e-4 * std::max(1.0, std::abs(numeric)))
        << "param " << i;
  }
}

TEST(Mlp, TrainingReducesLossOnLinearTarget) {
  MlpConfig cfg;
  cfg.layer_sizes = {2, 16, 1};
  cfg.learning_rate = 3e-3;
  cfg.seed = 13;
  Mlp mlp(cfg);

  util::Rng rng(17);
  std::vector<std::vector<double>> xs, ys;
  for (int i = 0; i < 256; ++i) {
    const double a = rng.uniform(-1.0, 1.0);
    const double b = rng.uniform(-1.0, 1.0);
    xs.push_back({a, b});
    ys.push_back({2.0 * a - 3.0 * b + 0.5});
  }
  const double before = mlp.evaluate_mse(xs, ys);
  for (int epoch = 0; epoch < 200; ++epoch) mlp.train_batch(xs, ys);
  const double after = mlp.evaluate_mse(xs, ys);
  EXPECT_LT(after, before * 0.05);
}

TEST(Mlp, CanOverfitTinyNonlinearSet) {
  MlpConfig cfg;
  cfg.layer_sizes = {1, 32, 1};
  cfg.learning_rate = 1e-2;
  cfg.seed = 19;
  Mlp mlp(cfg);
  std::vector<std::vector<double>> xs, ys;
  for (int i = 0; i < 16; ++i) {
    const double x = double(i) / 8.0 - 1.0;
    xs.push_back({x});
    ys.push_back({std::sin(3.0 * x)});
  }
  for (int epoch = 0; epoch < 2000; ++epoch) mlp.train_batch(xs, ys);
  EXPECT_LT(mlp.evaluate_mse(xs, ys), 1e-2);
}

TEST(Mlp, TrainBatchReturnsPreUpdateLoss) {
  Mlp mlp(tiny_config());
  const std::vector<std::vector<double>> xs{{0.1, 0.2, 0.3}};
  const std::vector<std::vector<double>> ys{{1.0, -1.0}};
  const double reported = mlp.train_batch(xs, ys);
  // Must equal the loss of the ORIGINAL parameters.
  Mlp fresh(tiny_config());
  EXPECT_NEAR(reported, fresh.evaluate_mse(xs, ys), 1e-12);
}

TEST(Mlp, TrainBatchRejectsMismatch) {
  Mlp mlp(tiny_config());
  const std::vector<std::vector<double>> xs{{0.1, 0.2, 0.3}};
  const std::vector<std::vector<double>> ys;
  EXPECT_THROW(mlp.train_batch(xs, ys), veritas::ContractViolation);
}

TEST(StandardScaler, NormalizesToZeroMeanUnitVar) {
  StandardScaler scaler;
  std::vector<std::vector<double>> rows;
  util::Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    rows.push_back({rng.normal(5.0, 2.0), rng.normal(-3.0, 0.5)});
  }
  scaler.fit(rows);
  double m0 = 0.0, m1 = 0.0, v0 = 0.0, v1 = 0.0;
  for (const auto& row : rows) {
    const auto z = scaler.transform(row);
    m0 += z[0];
    m1 += z[1];
    v0 += z[0] * z[0];
    v1 += z[1] * z[1];
  }
  const double n = double(rows.size());
  EXPECT_NEAR(m0 / n, 0.0, 1e-9);
  EXPECT_NEAR(m1 / n, 0.0, 1e-9);
  EXPECT_NEAR(v0 / n, 1.0, 1e-9);
  EXPECT_NEAR(v1 / n, 1.0, 1e-9);
}

TEST(StandardScaler, ConstantFeatureSafe) {
  StandardScaler scaler;
  scaler.fit(std::vector<std::vector<double>>{{1.0, 2.0}, {1.0, 4.0}});
  const auto z = scaler.transform(std::vector<double>{1.0, 3.0});
  EXPECT_DOUBLE_EQ(z[0], 0.0);  // constant column maps to 0, not NaN
}

TEST(StandardScaler, TransformBeforeFitRejected) {
  StandardScaler scaler;
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}),
               veritas::ContractViolation);
}

}  // namespace
}  // namespace veritas::ml
