// VeritasService::register_metrics: the Prometheus families the service
// exports, scraped after a real workload — outcome counters that match
// ServiceStats, the reconciliation self-check gauge at zero when
// quiescent, per-shard labels, the compute-latency histogram, and the
// build-info series. The tracing-ON section at the bottom checks that
// per-query spans reconcile with each other (phase durations nest
// inside the root service.execute span).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/test_helpers.hpp"
#include "math/simd_kernels.hpp"
#include "service/veritas_service.hpp"
#include "trace/trace_generator.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace {

using namespace veritas;
using service::Query;
using service::ServiceStats;
using service::VeritasService;
using util::MetricsRegistry;
using util::Tracer;

sim::SessionLog test_log(std::uint64_t seed) {
  const auto gtbw =
      trace::make_traces(trace::TraceFamily::kFccLike, 1, seed)[0];
  return core::testing::deployed_log(gtbw, 24);
}

/// True iff `text` contains the exact exposition line `line` + "\n".
bool has_line(const std::string& text, const std::string& line) {
  const std::string needle = line + "\n";
  std::size_t pos = text.find(needle);
  while (pos != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') return true;
    pos = text.find(needle, pos + 1);
  }
  return false;
}

TEST(ServiceMetrics, ExposesWorkloadCountersAndReconciles) {
  VeritasService svc(service::ServiceOptions{.num_threads = 2});
  svc.add_shard("a", core::VeritasConfig{});
  svc.add_shard("b", core::VeritasConfig{});

  // a: 2 distinct computed + 1 repeat (cache hit); b: 1 computed.
  const sim::SessionLog log0 = test_log(70);
  const sim::SessionLog log1 = test_log(71);
  for (const sim::SessionLog* log : {&log0, &log1, &log0}) {
    Query q;
    q.log = *log;
    q.shard = "a";
    svc.submit(std::move(q)).get();
  }
  {
    Query q;
    q.log = test_log(72);
    q.shard = "b";
    svc.submit(std::move(q)).get();
  }

  MetricsRegistry registry;
  svc.register_metrics(registry);
  const std::string text = registry.expose();

  // Service-level outcome counters match the stats the workload implies.
  EXPECT_TRUE(has_line(text, "veritas_queries_submitted_total 4"));
  EXPECT_TRUE(has_line(text, "veritas_queries_total{outcome=\"computed\"} 3"));
  EXPECT_TRUE(has_line(text, "veritas_queries_total{outcome=\"cache_hit\"} 1"));
  EXPECT_TRUE(has_line(text, "veritas_queries_total{outcome=\"rejected\"} 0"));
  EXPECT_TRUE(has_line(text, "veritas_queries_total{outcome=\"timed_out\"} 0"));
  EXPECT_TRUE(has_line(text, "veritas_queries_total{outcome=\"shed\"} 0"));
  EXPECT_TRUE(has_line(text, "veritas_queries_total{outcome=\"failed\"} 0"));
  EXPECT_TRUE(has_line(text, "veritas_result_cache_misses_total 3"));
  EXPECT_TRUE(has_line(text, "veritas_overloaded 0"));

  // Satellite 2: the reconciliation invariant as a self-check gauge —
  // submitted == computed + cache_hits + rejected + timed_out + shed +
  // failed, so the drift gauge reads exactly 0 at quiescence.
  EXPECT_TRUE(has_line(text, "veritas_unreconciled_queries 0"));
  ASSERT_TRUE(svc.stats().reconciled());

  // Queue depth gauge per priority class, drained.
  EXPECT_TRUE(
      has_line(text, "veritas_queue_depth{priority=\"interactive\"} 0"));
  EXPECT_TRUE(has_line(text, "veritas_queue_depth{priority=\"batch\"} 0"));
  EXPECT_TRUE(
      has_line(text, "veritas_queue_depth{priority=\"background\"} 0"));

  // Per-shard series carry the shard label and slice the totals.
  EXPECT_TRUE(has_line(text, "veritas_shard_submitted_total{shard=\"a\"} 3"));
  EXPECT_TRUE(has_line(text, "veritas_shard_submitted_total{shard=\"b\"} 1"));
  EXPECT_TRUE(has_line(
      text, "veritas_shard_queries_total{shard=\"a\",outcome=\"computed\"} 2"));
  EXPECT_TRUE(has_line(
      text,
      "veritas_shard_queries_total{shard=\"a\",outcome=\"cache_hit\"} 1"));
  EXPECT_TRUE(has_line(text, "veritas_shard_in_flight{shard=\"a\"} 0"));

  // Compute-latency histogram: only computed queries are timed.
  EXPECT_TRUE(has_line(text, "veritas_compute_latency_us_count 3"));
  EXPECT_NE(text.find("veritas_compute_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(
      text.find("veritas_shard_compute_latency_us_count{shard=\"a\"} 2"),
      std::string::npos);

  // Build info: one constant series with the resolved kernel tier.
  EXPECT_NE(text.find(std::string("veritas_build_info{kernels=\"") +
                      math::simd_kernels::backend_name() + "\""),
            std::string::npos);

  // Estimator-cache families are registered (series appear per shard
  // with an engine-level cache attached).
  EXPECT_NE(text.find("# TYPE veritas_estimator_cache_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE veritas_estimator_cache_entries gauge"),
            std::string::npos);
}

TEST(ServiceMetrics, ScrapeIsLiveAcrossSubsequentWork) {
  VeritasService svc(service::ServiceOptions{.num_threads = 1});
  svc.add_shard("a", core::VeritasConfig{});
  MetricsRegistry registry;
  svc.register_metrics(registry);
  EXPECT_TRUE(
      has_line(registry.expose(), "veritas_queries_submitted_total 0"));
  {
    Query q;
    q.log = test_log(80);
    q.shard = "a";
    svc.submit(std::move(q)).get();
  }
  // Same registry, no re-registration: the collectors read live state.
  EXPECT_TRUE(
      has_line(registry.expose(), "veritas_queries_submitted_total 1"));
}

#if !defined(VERITAS_TRACING_DISABLED)
// End-to-end span reconciliation: with tracing on, a computed query
// leaves a root service.execute span whose duration bounds every engine
// phase recorded under the same query id, and the engine phases nest
// inside engine.infer.
TEST(ServiceMetrics, TraceSpansReconcileWithQueryLatency) {
  Tracer::clear();
  Tracer::set_enabled(true);
  {
    VeritasService svc(service::ServiceOptions{.num_threads = 1});
    svc.add_shard("a", core::VeritasConfig{});
    Query q;
    q.log = test_log(90);
    q.shard = "a";
    svc.submit(std::move(q)).get();
  }
  Tracer::set_enabled(false);

  const std::vector<Tracer::Event> events = Tracer::events();
  ASSERT_FALSE(events.empty());

  // The one computed query got trace id 1.
  const Tracer::Event* execute = nullptr;
  const Tracer::Event* infer = nullptr;
  std::uint64_t ehmm_total_ns = 0;
  bool saw_queue_wait = false;
  bool saw_admit = false;
  for (const Tracer::Event& event : events) {
    if (event.query_id != 1) continue;
    const std::string name = event.name;
    if (name == "service.execute") {
      EXPECT_TRUE(event.root);
      execute = &event;
    } else if (name == "engine.infer") {
      infer = &event;
    } else if (name == "service.queue_wait") {
      saw_queue_wait = true;
    } else if (name == "service.admit") {
      saw_admit = true;
    } else if (name.rfind("ehmm.", 0) == 0) {
      ehmm_total_ns += event.duration_ns;
    }
  }
  ASSERT_NE(execute, nullptr);
  ASSERT_NE(infer, nullptr);
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_queue_wait);

  // Nesting: the engine pass fits inside the root span, and the
  // sequential ehmm phases sum to no more than the engine pass.
  EXPECT_LE(infer->duration_ns, execute->duration_ns);
  EXPECT_GT(ehmm_total_ns, 0u);
  EXPECT_LE(ehmm_total_ns, infer->duration_ns);
  EXPECT_GE(infer->start_ns, execute->start_ns);
  EXPECT_LE(infer->start_ns + infer->duration_ns,
            execute->start_ns + execute->duration_ns);

  Tracer::clear();
}

// With tracing enabled the build-info series says so.
TEST(ServiceMetrics, BuildInfoReportsTracingState) {
  VeritasService svc(service::ServiceOptions{.num_threads = 1});
  MetricsRegistry registry;
  svc.register_metrics(registry);
  EXPECT_NE(registry.expose().find("tracing=\"on\""), std::string::npos);
}
#else
TEST(ServiceMetrics, BuildInfoReportsTracingState) {
  VeritasService svc(service::ServiceOptions{.num_threads = 1});
  MetricsRegistry registry;
  svc.register_metrics(registry);
  EXPECT_NE(registry.expose().find("tracing=\"off\""), std::string::npos);
}
#endif

}  // namespace
