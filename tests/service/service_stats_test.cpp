// Per-shard counter export from VeritasService: hit/miss/computed
// attribution to the right shard, persistence across hot swaps, the
// queue-depth gauge, and the compute-latency percentiles (p50/p95/p99
// from the per-shard lock-free histogram).
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "core/test_helpers.hpp"
#include "service/veritas_service.hpp"
#include "trace/trace_generator.hpp"
#include "util/latency_histogram.hpp"

namespace {

using namespace veritas;
using service::Query;
using service::ServiceStats;
using service::ShardStats;
using service::VeritasService;

sim::SessionLog test_log(std::uint64_t seed) {
  const auto gtbw =
      trace::make_traces(trace::TraceFamily::kFccLike, 1, seed)[0];
  return core::testing::deployed_log(gtbw, 24);
}

const ShardStats& find_shard(const std::vector<ShardStats>& stats,
                             const std::string& name) {
  for (const ShardStats& s : stats) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "shard not found: " << name;
  static const ShardStats empty;
  return empty;
}

TEST(ServiceShardStats, CountersAttributeToTheRightShard) {
  service::ServiceOptions options;
  options.num_threads = 2;
  VeritasService svc(options);
  svc.add_shard("a", core::VeritasConfig{});
  core::VeritasConfig wide;
  wide.max_mbps = 12.0;
  svc.add_shard("b", wide);

  const sim::SessionLog log = test_log(5);
  // a: one miss then two hits; b: one miss.
  for (int round = 0; round < 3; ++round) {
    Query q;
    q.log = log;
    q.shard = "a";
    svc.submit(std::move(q)).get();
  }
  {
    Query q;
    q.log = log;
    q.shard = "b";
    svc.submit(std::move(q)).get();
  }

  const std::vector<ShardStats> stats = svc.shard_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "a");  // name-sorted
  EXPECT_EQ(stats[1].name, "b");

  const ShardStats& a = find_shard(stats, "a");
  EXPECT_EQ(a.submitted, 3u);
  EXPECT_EQ(a.computed, 1u);
  EXPECT_EQ(a.cache_hits, 2u);
  EXPECT_EQ(a.cache_misses, 1u);
  EXPECT_EQ(a.epoch, svc.shard_epoch("a"));

  const ShardStats& b = find_shard(stats, "b");
  EXPECT_EQ(b.submitted, 1u);
  EXPECT_EQ(b.computed, 1u);
  EXPECT_EQ(b.cache_hits, 0u);
  EXPECT_EQ(b.cache_misses, 1u);

  // Per-shard counters slice the service totals.
  const ServiceStats total = svc.stats();
  EXPECT_EQ(total.submitted, a.submitted + b.submitted);
  EXPECT_EQ(total.computed, a.computed + b.computed);
  EXPECT_EQ(total.cache_hits, a.cache_hits + b.cache_hits);
  EXPECT_EQ(total.cache_misses, a.cache_misses + b.cache_misses);
  EXPECT_EQ(total.queue_depth, 0u);  // drained
}

TEST(ServiceShardStats, CountersSurviveSwapAndResetOnReAdd) {
  VeritasService svc(service::ServiceOptions{.num_threads = 1});
  svc.add_shard("a", core::VeritasConfig{});
  const sim::SessionLog log = test_log(9);
  {
    Query q;
    q.log = log;
    q.shard = "a";
    svc.submit(std::move(q)).get();
  }
  EXPECT_EQ(svc.shard_stats()[0].submitted, 1u);

  // Hot swap: history persists, epoch moves.
  core::VeritasConfig swapped;
  swapped.sigma_mbps = 0.75;
  const std::uint64_t epoch = svc.swap_shard("a", swapped);
  const ShardStats after_swap = svc.shard_stats()[0];
  EXPECT_EQ(after_swap.submitted, 1u);
  EXPECT_EQ(after_swap.epoch, epoch);

  // Remove + re-add: fresh counters.
  EXPECT_TRUE(svc.remove_shard("a"));
  svc.add_shard("a", core::VeritasConfig{});
  const ShardStats fresh = svc.shard_stats()[0];
  EXPECT_EQ(fresh.submitted, 0u);
  EXPECT_EQ(fresh.computed, 0u);
}

TEST(ServiceShardStats, LatencyPercentilesCoverComputedQueries) {
  VeritasService svc(service::ServiceOptions{.num_threads = 2});
  svc.add_shard("a", core::VeritasConfig{});
  svc.add_shard("idle", core::VeritasConfig{});

  // 6 computed queries + 2 cache hits on shard "a"; "idle" gets none.
  std::vector<sim::SessionLog> logs;
  for (std::uint64_t s = 0; s < 6; ++s) logs.push_back(test_log(40 + s));
  for (auto& f : svc.submit_batch(logs, "a")) f.get();
  for (int hit = 0; hit < 2; ++hit) {
    Query q;
    q.log = logs[0];
    q.shard = "a";
    svc.submit(std::move(q)).get();
  }

  const std::vector<ShardStats> stats = svc.shard_stats();
  const ShardStats& a = find_shard(stats, "a");
  // Only computed queries are timed — hits complete in the submitter.
  EXPECT_EQ(a.latency_count, a.computed);
  EXPECT_EQ(a.latency_count, 6u);
  EXPECT_GT(a.latency_p50_us, 0.0);
  EXPECT_LE(a.latency_p50_us, a.latency_p95_us);
  EXPECT_LE(a.latency_p95_us, a.latency_p99_us);

  const ShardStats& idle = find_shard(stats, "idle");
  EXPECT_EQ(idle.latency_count, 0u);
  EXPECT_EQ(idle.latency_p99_us, 0.0);
}

TEST(ServiceShardStats, LatencyHistogramSurvivesSwapAndResetsOnReAdd) {
  VeritasService svc(service::ServiceOptions{.num_threads = 1});
  svc.add_shard("a", core::VeritasConfig{});
  {
    Query q;
    q.log = test_log(50);
    q.shard = "a";
    svc.submit(std::move(q)).get();
  }
  EXPECT_EQ(svc.shard_stats()[0].latency_count, 1u);

  // Hot swap: the histogram follows the shard name.
  core::VeritasConfig swapped;
  swapped.sigma_mbps = 0.75;
  svc.swap_shard("a", swapped);
  EXPECT_EQ(svc.shard_stats()[0].latency_count, 1u);

  // Remove + re-add: fresh histogram.
  EXPECT_TRUE(svc.remove_shard("a"));
  svc.add_shard("a", core::VeritasConfig{});
  EXPECT_EQ(svc.shard_stats()[0].latency_count, 0u);
  EXPECT_EQ(svc.shard_stats()[0].latency_p50_us, 0.0);
}

// The histogram itself: bucketing, nearest-rank percentiles, bounds.
TEST(LatencyHistogram, BucketsAndPercentiles) {
  using util::LatencyHistogram;
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 11u);
  EXPECT_EQ(LatencyHistogram::upper_bound_us(0), 0.0);
  EXPECT_EQ(LatencyHistogram::upper_bound_us(3), 7.0);

  LatencyHistogram h;
  EXPECT_EQ(h.snapshot().percentile_us(0.5), 0.0);  // empty

  // 90 fast samples (~100 µs bucket) and 10 slow ones (~100 ms bucket):
  // p50 reads the fast bucket's upper bound, p99 lands in the slow
  // bucket and is clamped to the exact observed maximum (PR 8).
  for (int i = 0; i < 90; ++i) h.record_us(100);
  for (int i = 0; i < 10; ++i) h.record_us(100000);
  const LatencyHistogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.total, 100u);
  EXPECT_EQ(snap.sum_us, 90u * 100u + 10u * 100000u);
  EXPECT_EQ(snap.max_us, 100000u);
  EXPECT_EQ(snap.percentile_us(0.5), LatencyHistogram::upper_bound_us(
                                         LatencyHistogram::bucket_of(100)));
  EXPECT_EQ(snap.percentile_us(0.99), 100000.0);
  EXPECT_LE(snap.percentile_us(0.5), snap.percentile_us(0.99));
}

TEST(ServiceShardStats, OutcomeBreakdownIsZeroAndReconciledOnHappyPath) {
  // The overload buckets exist but a healthy workload never touches
  // them — and the books balance exactly at quiescence.
  VeritasService svc(service::ServiceOptions{.num_threads = 2});
  svc.add_shard("a", core::VeritasConfig{});
  std::vector<sim::SessionLog> logs;
  for (std::uint64_t s = 0; s < 4; ++s) logs.push_back(test_log(60 + s));
  for (auto& f : svc.submit_batch(logs, "a")) f.get();
  for (auto& f : svc.submit_batch(logs, "a")) f.get();  // warm round

  const ServiceStats total = svc.stats();
  EXPECT_EQ(total.rejected, 0u);
  EXPECT_EQ(total.timed_out, 0u);
  EXPECT_EQ(total.shed, 0u);
  EXPECT_EQ(total.failed, 0u);
  EXPECT_EQ(total.degraded, 0u);
  EXPECT_EQ(total.stale_hits, 0u);
  EXPECT_FALSE(total.overloaded);
  EXPECT_TRUE(total.reconciled());
  for (const std::size_t depth : total.queue_depth_by_priority) {
    EXPECT_EQ(depth, 0u);
  }

  const std::vector<ShardStats> shard_stats = svc.shard_stats();
  const ShardStats& a = find_shard(shard_stats, "a");
  EXPECT_EQ(a.rejected, 0u);
  EXPECT_EQ(a.timed_out, 0u);
  EXPECT_EQ(a.shed, 0u);
  EXPECT_EQ(a.failed, 0u);
  EXPECT_EQ(a.degraded, 0u);
  EXPECT_EQ(a.stale_hits, 0u);
  EXPECT_EQ(a.in_flight, 0u);
  EXPECT_EQ(a.submitted, a.computed + a.cache_hits);
}

TEST(ServiceShardStats, QueueDepthGaugeReflectsPendingJobs) {
  // No worker lanes would deadlock the bounded queue; instead use one
  // lane and watch the gauge drain to zero after the batch completes.
  VeritasService svc(service::ServiceOptions{.num_threads = 1});
  svc.add_shard("a", core::VeritasConfig{});
  std::vector<sim::SessionLog> logs;
  for (std::uint64_t s = 0; s < 4; ++s) logs.push_back(test_log(20 + s));
  auto futures = svc.submit_batch(logs, "a");
  for (auto& f : futures) f.get();
  EXPECT_EQ(svc.stats().queue_depth, 0u);
  EXPECT_EQ(svc.shard_stats()[0].computed, 4u);
}

}  // namespace
