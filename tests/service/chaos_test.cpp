// Chaos suite: the service's failure semantics under deterministic
// fault injection (util/failpoint.hpp) and deliberate overload.
//
// The contract under test, from docs/ARCHITECTURE.md "Failure semantics
// & overload behavior": every future the service hands out resolves
// with a definite Expected<InferenceResult> — under slow consumers,
// poisoned jobs, forced admission rejections, mid-flight shard churn
// and teardown — lanes survive anything a job does, and the outcome
// counters reconcile exactly:
//   submitted == computed + cache_hits + rejected + timed_out
//                + shed + failed
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/test_helpers.hpp"
#include "service/veritas_service.hpp"
#include "trace/trace_generator.hpp"
#include "util/failpoint.hpp"

namespace {

using namespace veritas;
using namespace std::chrono_literals;
using service::InferenceResult;
using service::Priority;
using service::Query;
using service::QueryKind;
using service::ServiceStats;
using service::VeritasService;
using util::Failpoints;
using util::ScopedFailpoint;

sim::SessionLog test_log(std::uint64_t seed) {
  const auto gtbw =
      trace::make_traces(trace::TraceFamily::kFccLike, 1, seed)[0];
  return core::testing::deployed_log(gtbw, 24);
}

core::VeritasConfig small_config() {
  core::VeritasConfig cfg;
  cfg.num_samples = 2;
  return cfg;
}

Query make_query(const sim::SessionLog& log, std::uint64_t seed,
                 Priority priority = Priority::kBatch) {
  Query query;
  query.log = log;
  query.shard = "main";
  query.seed = seed;
  query.options.priority = priority;
  return query;
}

/// Asserts the future resolved with the given terminal code.
void expect_code(std::future<Expected<InferenceResult>>& future,
                 StatusCode code) {
  const Expected<InferenceResult> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), code) << result.status().to_string();
}

/// Occupies the single lane for `ms` by arming a one-shot sleep at the
/// execute failpoint; the next submitted job eats the sleep.
ScopedFailpoint occupy_lane(std::uint64_t ms) {
  Failpoints::Config config;
  config.mode = Failpoints::Config::Mode::kSleep;
  config.sleep_ms = ms;
  config.max_hits = 1;
  return ScopedFailpoint("service.lane.execute", config);
}

class ServiceChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::disable_all(); }
};

using ServiceChaos = ServiceChaosTest;  // suite alias for the CI filter

TEST_F(ServiceChaos, PoisonedJobBecomesInternalStatusAndLaneSurvives) {
  Failpoints::Config config;
  config.mode = Failpoints::Config::Mode::kThrow;
  config.max_hits = 1;
  ScopedFailpoint fp("service.lane.execute", config);

  service::ServiceOptions options;
  options.num_threads = 1;  // the poisoned job and its successors share
  options.cache_capacity = 0;  // one lane: survival is observable
  VeritasService service(options);
  service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(1);

  auto poisoned = service.submit(make_query(log, 1));
  auto after1 = service.submit(make_query(log, 2));
  auto after2 = service.submit(make_query(log, 3));

  {
    const Expected<InferenceResult> result = poisoned.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInternal);
    EXPECT_NE(result.status().message().find("failpoint"),
              std::string::npos);
  }
  // The same lane keeps serving: a poisoned job never stalls it.
  EXPECT_NE(after1.get().value().abduction, nullptr);
  EXPECT_NE(after2.get().value().abduction, nullptr);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_TRUE(stats.reconciled());
  EXPECT_EQ(fp.hits(), 1u);
}

TEST_F(ServiceChaos, AdmissionRejectFailpointResolvesAsRejectedValue) {
  ScopedFailpoint fp("service.queue.push", {});  // kError: reject all

  service::ServiceOptions options;
  options.num_threads = 1;
  VeritasService service(options);
  service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(2);

  auto rejected = service.submit(make_query(log, 1));
  expect_code(rejected, StatusCode::kRejected);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_TRUE(stats.reconciled());

  // Disarmed: the identical query now computes.
  Failpoints::disable("service.queue.push");
  EXPECT_NE(service.submit(make_query(log, 1)).get().value().abduction,
            nullptr);
}

TEST_F(ServiceChaos, CacheFillFailpointLosesReuseNeverTheAnswer) {
  ScopedFailpoint fp("service.cache.fill", {});  // kError: skip every fill

  service::ServiceOptions options;
  options.num_threads = 1;
  VeritasService service(options);
  service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(3);

  EXPECT_NE(service.submit(make_query(log, 1)).get().value().abduction,
            nullptr);
  // Nothing was cached: the repeat recomputes instead of hitting.
  const Expected<InferenceResult> repeat =
      service.submit(make_query(log, 1)).get();
  EXPECT_FALSE(repeat.value().cache_hit);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
  EXPECT_TRUE(stats.reconciled());
  EXPECT_EQ(fp.hits(), 2u);
}

TEST_F(ServiceChaos, FailedSwapLeavesShardServingTheOldModel) {
  service::ServiceOptions options;
  options.num_threads = 1;
  VeritasService service(options);
  const std::uint64_t epoch = service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(4);
  const Expected<InferenceResult> before =
      service.submit(make_query(log, 1)).get();

  {
    ScopedFailpoint fp("service.shard.swap", {});
    core::VeritasConfig swapped = small_config();
    swapped.sigma_mbps = 0.25;
    EXPECT_THROW(service.swap_shard("main", swapped),
                 util::FailpointTriggered);
  }
  // The failed swap published nothing: same epoch, same model, and the
  // old cache entry still hits.
  EXPECT_EQ(service.shard_epoch("main"), epoch);
  const Expected<InferenceResult> after =
      service.submit(make_query(log, 1)).get();
  EXPECT_TRUE(after.value().cache_hit);
  EXPECT_EQ(after.value().abduction.get(), before.value().abduction.get());
}

TEST_F(ServiceChaos, DeadlineExpiresAtDequeueBehindASlowJob) {
  auto lane_blocker = occupy_lane(300);

  service::ServiceOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;
  VeritasService service(options);
  service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(5);

  auto slow = service.submit(make_query(log, 1));  // eats the 300ms sleep
  Query doomed = make_query(log, 2);
  doomed.options.deadline = std::chrono::steady_clock::now() + 50ms;
  auto expired = service.submit(std::move(doomed));

  EXPECT_NE(slow.get().value().abduction, nullptr);
  // By the time the lane freed up, the deadline was long gone: expired
  // at dequeue without burning the lane on it.
  expect_code(expired, StatusCode::kDeadlineExceeded);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.computed, 1u);
  EXPECT_TRUE(stats.reconciled());
}

TEST_F(ServiceChaos, AdmissionTimeoutBoundsTheSubmitWait) {
  auto lane_blocker = occupy_lane(400);

  service::ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.cache_capacity = 0;
  options.admission_timeout = 50ms;
  VeritasService service(options);
  service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(6);

  auto slow = service.submit(make_query(log, 1));    // occupies the lane
  auto queued = service.submit(make_query(log, 2));  // fills the queue
  const auto start = std::chrono::steady_clock::now();
  auto bounced = service.submit(make_query(log, 3));  // must not block long
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_LT(waited, 300ms);  // bounded by the admission timeout, not the lane

  expect_code(bounced, StatusCode::kRejected);
  EXPECT_NE(slow.get().value().abduction, nullptr);
  EXPECT_NE(queued.get().value().abduction, nullptr);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_TRUE(stats.reconciled());
}

TEST_F(ServiceChaos, OverloadShedsBackgroundBeforeAnythingElse) {
  auto lane_blocker = occupy_lane(300);

  service::ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  options.cache_capacity = 0;
  options.overload.queue_high_watermark = 0.25;  // 1 queued job = overload
  VeritasService service(options);
  service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(7);

  auto slow = service.submit(make_query(log, 1));    // occupies the lane
  auto queued = service.submit(make_query(log, 2));  // depth 1: overloaded
  EXPECT_TRUE(service.overloaded());
  auto background =
      service.submit(make_query(log, 3, Priority::kBackground));
  expect_code(background, StatusCode::kShed);  // pre-shed at admission
  // Batch work is NOT shed — it queues normally.
  auto batch = service.submit(make_query(log, 4, Priority::kBatch));

  EXPECT_NE(slow.get().value().abduction, nullptr);
  EXPECT_NE(queued.get().value().abduction, nullptr);
  EXPECT_NE(batch.get().value().abduction, nullptr);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.computed, 3u);
  EXPECT_TRUE(stats.reconciled());
}

TEST_F(ServiceChaos, InteractiveArrivalDisplacesQueuedBackground) {
  auto lane_blocker = occupy_lane(300);

  service::ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.cache_capacity = 0;
  // Keep the background job admissible: shed only by displacement here.
  options.overload.queue_high_watermark = 1.0;
  options.overload.shed_lowest_priority = false;
  VeritasService service(options);
  service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(8);

  auto slow = service.submit(make_query(log, 1));  // occupies the lane
  auto background =
      service.submit(make_query(log, 2, Priority::kBackground));  // queued
  // The interactive arrival lands in O(1): the queued background job is
  // displaced and resolved as shed — no waiting behind it.
  auto interactive =
      service.submit(make_query(log, 3, Priority::kInteractive));

  expect_code(background, StatusCode::kShed);
  EXPECT_NE(slow.get().value().abduction, nullptr);
  EXPECT_NE(interactive.get().value().abduction, nullptr);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.computed, 2u);
  EXPECT_TRUE(stats.reconciled());
}

TEST_F(ServiceChaos, DegradedResultIsAnExactPrefixOfTheFullAnswer) {
  auto lane_blocker = occupy_lane(300);

  service::ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  options.cache_capacity = 0;
  options.overload.queue_high_watermark = 0.25;
  options.overload.degraded_num_samples = 1;  // config asks for 2
  VeritasService service(options);
  service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(9);

  auto slow = service.submit(make_query(log, 1));    // occupies the lane
  auto queued = service.submit(make_query(log, 2));  // depth 1: overloaded
  auto degraded = service.submit(make_query(log, 77));

  (void)slow.get();
  (void)queued.get();
  const Expected<InferenceResult> result = degraded.get();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result.value().degraded);
  ASSERT_NE(result.value().abduction, nullptr);

  // Ground truth: the full-fidelity answer for the same (log, seed).
  core::Ehmm::Scratch scratch;
  const core::InferenceEngine engine{small_config()};
  const core::VeritasResult full = engine.infer_with_seed(log, scratch, 77);
  const core::VeritasResult& got = *result.value().abduction;
  ASSERT_EQ(full.samples.size(), 2u);
  ASSERT_EQ(got.samples.size(), 1u);  // truncated, not re-randomized
  EXPECT_EQ(got.log_likelihood, full.log_likelihood);
  EXPECT_EQ(got.map_states_mbps, full.map_states_mbps);
  const auto va = got.samples[0].values_mbps();
  const auto vb = full.samples[0].values_mbps();
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_TRUE(stats.reconciled());
}

TEST_F(ServiceChaos, DegradedResultsAreNeverCached) {
  auto lane_blocker = occupy_lane(300);

  service::ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;  // cache stays enabled
  options.overload.queue_high_watermark = 0.25;
  options.overload.degraded_num_samples = 1;
  VeritasService service(options);
  service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(10);

  auto slow = service.submit(make_query(log, 1));
  auto queued = service.submit(make_query(log, 2));
  auto degraded = service.submit(make_query(log, 77));
  (void)slow.get();
  (void)queued.get();
  EXPECT_TRUE(degraded.get().value().degraded);

  // Quiet again: the same query must recompute at full fidelity, not
  // hit a truncated cache entry.
  const Expected<InferenceResult> repeat =
      service.submit(make_query(log, 77)).get();
  EXPECT_FALSE(repeat.value().cache_hit);
  EXPECT_FALSE(repeat.value().degraded);
  ASSERT_EQ(repeat.value().abduction->samples.size(), 2u);
}

TEST_F(ServiceChaos, StaleCacheHitServedUnderOverloadAfterSwap) {
  service::ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  options.overload.queue_high_watermark = 0.25;
  options.overload.serve_stale_hits = true;
  VeritasService service(options);
  const std::uint64_t old_epoch = service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(11);

  // Warm the cache under the old epoch, then retire that model.
  const Expected<InferenceResult> fresh =
      service.submit(make_query(log, 1)).get();
  ASSERT_TRUE(fresh.ok());
  core::VeritasConfig swapped = small_config();
  swapped.sigma_mbps = 0.25;
  service.swap_shard("main", swapped);

  // Pressure: block the lane and queue a job so the detector arms.
  auto lane_blocker = occupy_lane(300);
  auto slow = service.submit(make_query(log, 2));
  auto queued = service.submit(make_query(log, 3));
  EXPECT_TRUE(service.overloaded());

  // The same query again: current epoch misses, previous epoch hits —
  // the slightly-old model now instead of the fresh model late.
  const Expected<InferenceResult> stale =
      service.submit(make_query(log, 1)).get();
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale.value().cache_hit);
  EXPECT_TRUE(stale.value().stale);
  EXPECT_EQ(stale.value().shard_epoch, old_epoch);
  EXPECT_EQ(stale.value().abduction.get(), fresh.value().abduction.get());

  (void)slow.get();
  (void)queued.get();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.stale_hits, 1u);
  EXPECT_TRUE(stats.reconciled());
}

TEST_F(ServiceChaos, SlowConsumerFailpointOnlyDelaysDelivery) {
  Failpoints::Config config;
  config.mode = Failpoints::Config::Mode::kSleep;
  config.sleep_ms = 20;
  ScopedFailpoint fp("service.queue.pop", config);

  service::ServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 0;
  VeritasService service(options);
  service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(12);

  std::vector<std::future<Expected<InferenceResult>>> futures;
  for (std::uint64_t i = 0; i < 6; ++i) {
    futures.push_back(service.submit(make_query(log, i)));
  }
  for (auto& future : futures) {
    EXPECT_NE(future.get().value().abduction, nullptr);
  }
  EXPECT_GE(fp.hits(), 6u);  // every dequeue ate the sleep
  EXPECT_TRUE(service.stats().reconciled());
}

TEST_F(ServiceChaos, ThrowingPopFailpointNeverKillsALane) {
  Failpoints::Config config;
  config.mode = Failpoints::Config::Mode::kThrow;
  ScopedFailpoint fp("service.queue.pop", config);  // throws on EVERY pop

  service::ServiceOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;
  VeritasService service(options);
  service.add_shard("main", small_config());
  const sim::SessionLog log = test_log(13);

  // The pop-site throw is swallowed at the lane boundary; the popped
  // job itself still executes and resolves.
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_NE(service.submit(make_query(log, i)).get().value().abduction,
              nullptr);
  }
  EXPECT_EQ(fp.hits(), 3u);
}

TEST_F(ServiceChaos, RandomizedFaultsEveryFutureResolvesAndBooksBalance) {
  // Probabilistic (but deterministic: SplitMix64 over evaluation
  // indices) mix of admission rejections and poisoned jobs over a
  // mixed-priority workload. The invariants: every future resolves,
  // and the terminal buckets sum exactly to the submissions.
  Failpoints::Config push_config;
  push_config.probability = 0.2;
  push_config.seed = 7;
  ScopedFailpoint push_fp("service.queue.push", push_config);
  Failpoints::Config execute_config;
  execute_config.mode = Failpoints::Config::Mode::kThrow;
  execute_config.probability = 0.3;
  execute_config.seed = 11;
  ScopedFailpoint execute_fp("service.lane.execute", execute_config);

  constexpr std::uint64_t kQueries = 24;
  std::vector<std::future<Expected<InferenceResult>>> futures;
  {
    service::ServiceOptions options;
    options.num_threads = 3;
    options.cache_capacity = 0;
    VeritasService service(options);
    service.add_shard("main", small_config());
    const sim::SessionLog log = test_log(14);
    for (std::uint64_t i = 0; i < kQueries; ++i) {
      futures.push_back(service.submit(
          make_query(log, i, static_cast<Priority>(i % 3))));
    }
    for (auto& future : futures) future.wait();

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, kQueries);
    EXPECT_TRUE(stats.reconciled())
        << "computed=" << stats.computed << " rejected=" << stats.rejected
        << " failed=" << stats.failed << " shed=" << stats.shed;
    EXPECT_EQ(stats.rejected, push_fp.hits());
    EXPECT_EQ(stats.failed, execute_fp.hits());
    EXPECT_GT(stats.rejected, 0u);
    EXPECT_GT(stats.failed, 0u);
    EXPECT_GT(stats.computed, 0u);
  }
  // Survived teardown too; now every future must hold a definite value.
  std::uint64_t ok = 0, rejected = 0, failed = 0;
  for (auto& future : futures) {
    const Expected<InferenceResult> result = future.get();
    if (result.ok()) {
      ++ok;
    } else if (result.status().code() == StatusCode::kRejected) {
      ++rejected;
    } else if (result.status().code() == StatusCode::kInternal) {
      ++failed;
    } else {
      ADD_FAILURE() << "unexpected status " << result.status().to_string();
    }
  }
  EXPECT_EQ(ok + rejected + failed, kQueries);
}

TEST_F(ServiceChaos, TeardownUnderChaosResolvesEverything) {
  Failpoints::Config config;
  config.mode = Failpoints::Config::Mode::kThrow;
  config.probability = 0.5;
  config.seed = 3;
  ScopedFailpoint fp("service.lane.execute", config);

  std::vector<std::future<Expected<InferenceResult>>> futures;
  {
    service::ServiceOptions options;
    options.num_threads = 2;
    options.queue_capacity = 2;
    options.cache_capacity = 0;
    VeritasService service(options);
    service.add_shard("main", small_config());
    const sim::SessionLog log = test_log(15);
    for (std::uint64_t i = 0; i < 10; ++i) {
      futures.push_back(service.submit(make_query(log, i)));
    }
    // Destroyed with most of the burst queued and faults armed.
  }
  for (auto& future : futures) {
    const Expected<InferenceResult> result = future.get();
    if (result.ok()) {
      EXPECT_NE(result.value().abduction, nullptr);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kInternal);
    }
  }
}

TEST_F(ServiceChaos, LaneQuotaKeepsAHotShardFromStarvingTheFleet) {
  // Not a failpoint test, but the same robustness family: with a
  // per-shard lane quota, a burst on one shard cannot occupy both
  // lanes; the other shard's query does not wait for the whole burst.
  service::ServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 0;
  options.max_lanes_per_shard = 1;
  VeritasService service(options);
  service.add_shard("main", small_config());
  core::VeritasConfig other = small_config();
  other.sigma_mbps = 0.25;
  service.add_shard("other", other);

  const sim::SessionLog log = test_log(16);
  std::vector<std::future<Expected<InferenceResult>>> hot;
  for (std::uint64_t i = 0; i < 8; ++i) {
    hot.push_back(service.submit(make_query(log, i)));
  }
  Query cold_query = make_query(log, 99);
  cold_query.shard = "other";
  auto cold = service.submit(std::move(cold_query));

  EXPECT_NE(cold.get().value().abduction, nullptr);
  for (auto& future : hot) {
    EXPECT_NE(future.get().value().abduction, nullptr);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.computed, 9u);
  EXPECT_TRUE(stats.reconciled());
}

}  // namespace
