// Service-layer semantics: registry lifecycle (add/swap/remove with
// epochs), cache hit/miss accounting and invalidation, bounded-queue
// backpressure, and the headline guarantee — payloads bit-identical to
// the direct single-threaded engine path for every lane count.
#include "service/veritas_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "abr/abr_factory.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"
#include "trace/trace_generator.hpp"
#include "util/expects.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::service {
namespace {

std::vector<sim::SessionLog> make_logs(std::size_t count,
                                       std::uint64_t seed = 77) {
  const auto traces =
      trace::make_traces(trace::TraceFamily::kFccLike, count, seed);
  video::VideoConfig vcfg = video::default_video_config();
  vcfg.duration_s = 40.0;  // ~20 chunks: fast but non-trivial sessions
  const video::Video video(vcfg);
  std::vector<sim::SessionLog> logs;
  logs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto abr = abr::make_abr(i % 2 == 0 ? "mpc" : "bba");
    const net::NetworkPath path(traces[i], 0.08);
    logs.push_back(sim::run_session(video, *abr, path).log);
  }
  return logs;
}

core::VeritasConfig config_a() {
  core::VeritasConfig cfg;
  cfg.num_samples = 2;
  return cfg;
}

core::VeritasConfig config_b() {
  core::VeritasConfig cfg;
  cfg.num_samples = 2;
  cfg.sigma_mbps = 0.25;  // a genuinely different model
  return cfg;
}

/// Exact (bit-level) equality of two abduction results.
void expect_identical(const core::VeritasResult& a,
                      const core::VeritasResult& b) {
  EXPECT_EQ(a.log_likelihood, b.log_likelihood);
  EXPECT_EQ(a.map_states_mbps, b.map_states_mbps);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  const auto traces_equal = [](const trace::BandwidthTrace& x,
                               const trace::BandwidthTrace& y) {
    const auto xv = x.values_mbps();
    const auto yv = y.values_mbps();
    return xv.size() == yv.size() &&
           std::equal(xv.begin(), xv.end(), yv.begin());
  };
  EXPECT_TRUE(traces_equal(a.map_trace, b.map_trace));
  for (std::size_t s = 0; s < a.samples.size(); ++s) {
    EXPECT_TRUE(traces_equal(a.samples[s], b.samples[s])) << "sample " << s;
  }
  ASSERT_EQ(a.posterior_marginals.rows(), b.posterior_marginals.rows());
  ASSERT_EQ(a.posterior_marginals.cols(), b.posterior_marginals.cols());
  EXPECT_EQ(a.posterior_marginals.max_abs_diff(b.posterior_marginals), 0.0);
}

TEST(VeritasService, RegistryLifecycle) {
  ServiceOptions options;
  options.num_threads = 1;
  VeritasService service(options);
  EXPECT_FALSE(service.has_shard("mpc"));
  const std::uint64_t e0 = service.add_shard("mpc", config_a());
  const std::uint64_t e1 = service.add_shard("bba", config_a());
  EXPECT_NE(e0, e1);  // epochs unique across shards
  EXPECT_TRUE(service.has_shard("mpc"));
  EXPECT_EQ(service.shard_names(), (std::vector<std::string>{"bba", "mpc"}));
  EXPECT_EQ(service.shard_epoch("mpc"), e0);

  const std::uint64_t e2 = service.swap_shard("mpc", config_b());
  EXPECT_GT(e2, e1);  // bumped past every prior epoch
  EXPECT_EQ(service.shard_epoch("mpc"), e2);

  EXPECT_TRUE(service.remove_shard("bba"));
  EXPECT_FALSE(service.remove_shard("bba"));
  EXPECT_FALSE(service.has_shard("bba"));
  EXPECT_THROW(service.shard_epoch("bba"), ContractViolation);
  EXPECT_THROW(service.swap_shard("bba", config_a()), ContractViolation);
}

TEST(VeritasService, UnknownShardResolvesAsNotFoundValue) {
  // Robustness contract: a typo'd shard name is an environment error,
  // not a caller bug — it travels as a Status value, never a throw.
  VeritasService service;
  Query query;
  query.log = make_logs(1)[0];
  query.shard = "nope";
  auto future = service.submit(std::move(query));
  const Expected<InferenceResult> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("nope"), std::string::npos);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_TRUE(stats.reconciled());

  // try_submit hands back a resolved future too (not a nullopt: the
  // queue was never involved).
  Query again;
  again.log = make_logs(1)[0];
  again.shard = "nope";
  auto maybe = service.try_submit(std::move(again));
  ASSERT_TRUE(maybe.has_value());
  EXPECT_EQ(maybe->get().status().code(), StatusCode::kNotFound);
}

TEST(VeritasService, CacheHitAndMissCounters) {
  ServiceOptions options;
  options.num_threads = 2;
  VeritasService service(options);
  service.add_shard("main", config_a());
  const auto logs = make_logs(3);

  for (auto& future : service.submit_batch(logs, "main")) future.get();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.computed, 3u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(stats.cache_entries, 3u);

  // The same workload again: answered entirely from the cache.
  std::vector<InferenceResult> warm;
  for (auto& future : service.submit_batch(logs, "main")) {
    warm.push_back(future.get().value());
  }
  stats = service.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.computed, 3u);  // nothing recomputed
  EXPECT_EQ(stats.cache_hits, 3u);
  EXPECT_EQ(stats.cache_misses, 3u);
  for (const InferenceResult& result : warm) {
    EXPECT_TRUE(result.cache_hit);
    ASSERT_NE(result.abduction, nullptr);
  }
}

TEST(VeritasService, CachedResultEqualsFreshComputation) {
  ServiceOptions options;
  options.num_threads = 1;
  VeritasService service(options);
  service.add_shard("main", config_a());
  const auto logs = make_logs(1);

  Query query;
  query.log = logs[0];
  query.shard = "main";
  const InferenceResult cold = service.submit(query).get().value();
  const InferenceResult hot = service.submit(query).get().value();
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_EQ(cold.abduction.get(), hot.abduction.get());  // shared payload
  expect_identical(*cold.abduction, *hot.abduction);
}

TEST(VeritasService, DistinctSeedsAreDistinctCacheEntries) {
  VeritasService service;
  service.add_shard("main", config_a());
  const auto logs = make_logs(1);

  Query query;
  query.log = logs[0];
  query.shard = "main";
  query.seed = 1;
  const InferenceResult one = service.submit(query).get().value();
  query.seed = 2;
  const InferenceResult two = service.submit(query).get().value();
  EXPECT_FALSE(two.cache_hit);  // different sampling stream, new entry
  // Posterior samples differ; the seed-independent pieces agree.
  EXPECT_EQ(one.abduction->log_likelihood, two.abduction->log_likelihood);
  query.seed = 1;
  EXPECT_TRUE(service.submit(query).get().value().cache_hit);
}

TEST(VeritasService, SeedXorResolvesAgainstShardConfig) {
  VeritasService service;
  service.add_shard("main", config_a());
  const auto logs = make_logs(1);

  // seed_xor = s must land on the same cache entry (and sampling
  // stream) as an explicit seed of config.seed ^ s.
  Query xored;
  xored.log = logs[0];
  xored.shard = "main";
  xored.seed_xor = 99;
  const InferenceResult via_xor = service.submit(xored).get().value();

  Query explicit_seed;
  explicit_seed.log = logs[0];
  explicit_seed.shard = "main";
  explicit_seed.seed = config_a().seed ^ 99ULL;
  const InferenceResult via_seed = service.submit(explicit_seed).get().value();
  EXPECT_TRUE(via_seed.cache_hit);
  EXPECT_EQ(via_seed.abduction.get(), via_xor.abduction.get());
}

TEST(VeritasService, PredictionQueriesIgnoreSeedInCacheKey) {
  VeritasService service;
  service.add_shard("main", config_a());
  const auto logs = make_logs(1);

  Query query;
  query.log = logs[0];
  query.shard = "main";
  query.kind = QueryKind::kPredictSequence;
  query.seed = 1;
  const InferenceResult one = service.submit(query).get().value();
  query.seed = 2;
  const InferenceResult two = service.submit(query).get().value();
  // Predictions are seed-independent: one computation, one entry.
  EXPECT_TRUE(two.cache_hit);
  EXPECT_EQ(one.predictions.get(), two.predictions.get());
  EXPECT_EQ(service.stats().computed, 1u);
}

TEST(VeritasService, SwapShardInvalidatesCacheViaEpoch) {
  VeritasService service;
  service.add_shard("main", config_a());
  const auto logs = make_logs(1);

  Query query;
  query.log = logs[0];
  query.shard = "main";
  const InferenceResult before = service.submit(query).get().value();
  EXPECT_TRUE(service.submit(query).get().value().cache_hit);

  // Retrain/replace: same name, different model, new epoch.
  const std::uint64_t epoch = service.swap_shard("main", config_b());
  const InferenceResult after = service.submit(query).get().value();
  EXPECT_FALSE(after.cache_hit);  // old entry unreachable by construction
  EXPECT_EQ(after.shard_epoch, epoch);
  EXPECT_NE(before.abduction->log_likelihood,
            after.abduction->log_likelihood);  // genuinely the new model

  // The new model's entry caches normally from here on.
  EXPECT_TRUE(service.submit(query).get().value().cache_hit);
}

TEST(VeritasService, BackpressureTinyQueueStillCompletesEverything) {
  ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 2;  // far smaller than the workload
  options.cache_capacity = 0;  // force every query through the queue
  VeritasService service(options);
  service.add_shard("main", config_a());
  const auto logs = make_logs(12);

  auto futures = service.submit_batch(logs, "main");
  std::size_t completed = 0;
  for (auto& future : futures) {
    if (future.get().value().abduction != nullptr) ++completed;
  }
  EXPECT_EQ(completed, logs.size());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.computed, logs.size());
  EXPECT_EQ(stats.cache_hits, 0u);  // cache disabled
  EXPECT_EQ(stats.cache_misses, 0u);
}

TEST(VeritasService, TrySubmitReportsFullQueue) {
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.cache_capacity = 0;
  VeritasService service(options);
  // A deliberately heavy model (k = 301 states, so every recursion step
  // is ~200x the default's work) keeps per-job cost far above the
  // submit loop's per-query cost: the estimator cache and the SIMD
  // kernels made default-config jobs fast enough that a 1-lane service
  // could drain this burst without ever filling the queue.
  core::VeritasConfig heavy = config_a();
  heavy.epsilon_mbps = 0.1;
  heavy.max_mbps = 30.0;
  heavy.precomputed_powers = 4;  // keep the big-k engine build cheap
  service.add_shard("main", heavy);
  const auto logs = make_logs(1);

  // Saturate: with one lane and capacity 1, some try_submit in a burst
  // must be rejected; accepted ones must all complete.
  std::vector<std::future<Expected<InferenceResult>>> accepted;
  std::size_t rejected = 0;
  for (int i = 0; i < 64; ++i) {
    Query query;
    query.log = logs[0];
    query.shard = "main";
    query.seed = static_cast<std::uint64_t>(i);  // all distinct jobs
    if (auto future = service.try_submit(std::move(query))) {
      accepted.push_back(std::move(*future));
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  ASSERT_FALSE(accepted.empty());
  for (auto& future : accepted) EXPECT_NE(future.get().value().abduction, nullptr);
}

TEST(VeritasService, RejectedTrySubmitSkewsNoCounters) {
  ServiceOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;  // cache stays enabled (default capacity)
  VeritasService service(options);
  service.add_shard("main", config_a());
  const auto logs = make_logs(1);

  std::vector<std::future<Expected<InferenceResult>>> accepted;
  for (int i = 0; i < 32; ++i) {
    Query query;
    query.log = logs[0];
    query.shard = "main";
    query.seed = static_cast<std::uint64_t>(i);  // all distinct, no hits
    if (auto future = service.try_submit(std::move(query))) {
      accepted.push_back(std::move(*future));
    }
  }
  for (auto& future : accepted) future.get();

  // Rejected probes must leave no trace: every counter reflects only
  // the accepted queries.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, accepted.size());
  EXPECT_EQ(stats.computed, accepted.size());
  EXPECT_EQ(stats.cache_misses, accepted.size());
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(VeritasService, MixedShardBatchesBitIdenticalToDirectEngineAnyLanes) {
  const auto logs = make_logs(8);
  // Ground truth: the direct, single-threaded engine path per shard.
  const core::InferenceEngine engine_a{config_a()};
  const core::InferenceEngine engine_b{config_b()};
  std::vector<core::VeritasResult> expected;
  expected.reserve(logs.size());
  for (std::size_t i = 0; i < logs.size(); ++i) {
    expected.push_back((i % 2 == 0 ? engine_a : engine_b).infer(logs[i]));
  }

  for (const std::size_t lanes : {std::size_t{1}, std::size_t{4},
                                  std::size_t{8}}) {
    ServiceOptions options;
    options.num_threads = lanes;
    VeritasService service(options);
    service.add_shard("a", config_a());
    service.add_shard("b", config_b());

    std::vector<std::future<Expected<InferenceResult>>> futures;
    futures.reserve(logs.size());
    for (std::size_t i = 0; i < logs.size(); ++i) {
      Query query;
      query.log = logs[i];
      query.shard = i % 2 == 0 ? "a" : "b";
      futures.push_back(service.submit(std::move(query)));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const InferenceResult result = futures[i].get().value();
      ASSERT_NE(result.abduction, nullptr) << "lanes " << lanes;
      expect_identical(*result.abduction, expected[i]);
    }

    // Warm repeat at the same lane count: hits, still bit-identical.
    for (std::size_t i = 0; i < logs.size(); ++i) {
      Query query;
      query.log = logs[i];
      query.shard = i % 2 == 0 ? "a" : "b";
      const InferenceResult result = service.submit(std::move(query)).get().value();
      EXPECT_TRUE(result.cache_hit);
      expect_identical(*result.abduction, expected[i]);
    }
  }
}

TEST(VeritasService, PredictSequenceMatchesDirectFacade) {
  VeritasService service;
  service.add_shard("main", config_a());
  const auto logs = make_logs(2);
  const core::Veritas veritas(config_a());

  for (const auto& log : logs) {
    Query query;
    query.log = log;
    query.shard = "main";
    query.kind = QueryKind::kPredictSequence;
    const InferenceResult result = service.submit(std::move(query)).get().value();
    ASSERT_NE(result.predictions, nullptr);
    const auto expected = veritas.predict_sequence(log);
    ASSERT_EQ(result.predictions->size(), expected.size());
    for (std::size_t n = 0; n < expected.size(); ++n) {
      EXPECT_EQ((*result.predictions)[n].expected_gtbw_mbps,
                expected[n].expected_gtbw_mbps);
      EXPECT_EQ((*result.predictions)[n].throughput_mbps,
                expected[n].throughput_mbps);
      EXPECT_EQ((*result.predictions)[n].download_time_s,
                expected[n].download_time_s);
    }
  }
  // Abduction and prediction of the same log are distinct cache entries.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 2u);
}

TEST(VeritasService, HotSwapUnderLoadKeepsInFlightQueriesConsistent) {
  ServiceOptions options;
  options.num_threads = 4;
  options.cache_capacity = 0;  // every submission computes
  VeritasService service(options);
  service.add_shard("main", config_a());
  const auto logs = make_logs(6);
  const core::InferenceEngine engine_a{config_a()};
  const core::InferenceEngine engine_b{config_b()};

  // Interleave submissions with registry churn. Every future must
  // resolve to the model its submission saw: config A before the swap,
  // config B after — never a torn mixture.
  std::vector<std::future<Expected<InferenceResult>>> phase_a;
  for (const auto& log : logs) {
    Query query;
    query.log = log;
    query.shard = "main";
    phase_a.push_back(service.submit(std::move(query)));
  }
  const std::uint64_t new_epoch = service.swap_shard("main", config_b());
  std::vector<std::future<Expected<InferenceResult>>> phase_b;
  for (const auto& log : logs) {
    Query query;
    query.log = log;
    query.shard = "main";
    phase_b.push_back(service.submit(std::move(query)));
  }

  for (std::size_t i = 0; i < logs.size(); ++i) {
    const InferenceResult a = phase_a[i].get().value();
    const InferenceResult b = phase_b[i].get().value();
    EXPECT_LT(a.shard_epoch, new_epoch);
    EXPECT_EQ(b.shard_epoch, new_epoch);
    expect_identical(*a.abduction, engine_a.infer(logs[i]));
    expect_identical(*b.abduction, engine_b.infer(logs[i]));
  }
}

TEST(VeritasService, DestructorCompletesAcceptedWork) {
  const auto logs = make_logs(4);
  std::vector<std::future<Expected<InferenceResult>>> futures;
  {
    ServiceOptions options;
    options.num_threads = 2;
    VeritasService service(options);
    service.add_shard("main", config_a());
    futures = service.submit_batch(logs, "main");
    // Service destroyed here, possibly with jobs still queued.
  }
  for (auto& future : futures) {
    EXPECT_NE(future.get().value().abduction, nullptr);  // never a broken promise
  }
}

TEST(VeritasService, DestructionUnderLoadResolvesEveryFuture) {
  // Destroy the service while most of the workload is still queued
  // behind a single slow lane and a tiny queue: every accepted future
  // must still resolve with a definite Expected — a payload here, since
  // the destructor drains accepted work (no deadline to expire).
  const auto logs = make_logs(10);
  std::vector<std::future<Expected<InferenceResult>>> futures;
  {
    ServiceOptions options;
    options.num_threads = 1;
    options.queue_capacity = 2;
    options.cache_capacity = 0;
    VeritasService service(options);
    service.add_shard("main", config_a());
    futures = service.submit_batch(logs, "main");
    // Destroyed here: some jobs in flight, some queued.
  }
  for (auto& future : futures) {
    const Expected<InferenceResult> result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    EXPECT_NE(result.value().abduction, nullptr);
  }
}

TEST(VeritasService, RemoveShardMidFlightCompletesOnPinnedEngine) {
  // Queries pin their engine at submit: removing the shard under a
  // queued + in-flight workload must not fail or reroute anything.
  ServiceOptions options;
  options.num_threads = 2;
  options.cache_capacity = 0;
  VeritasService service(options);
  service.add_shard("main", config_a());
  const auto logs = make_logs(8);
  auto futures = service.submit_batch(logs, "main");
  EXPECT_TRUE(service.remove_shard("main"));

  const core::InferenceEngine engine{config_a()};
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Expected<InferenceResult> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    expect_identical(*result.value().abduction, engine.infer(logs[i]));
  }
  // The shard is gone for *new* submissions.
  Query query;
  query.log = logs[0];
  query.shard = "main";
  EXPECT_EQ(service.submit(std::move(query)).get().status().code(),
            StatusCode::kNotFound);
}

TEST(VeritasService, SubmitAfterShutdownViaClosedQueueIsRejectedValue) {
  // There is no public close(), but a deadline that has already passed
  // exercises the other immediate-resolution path: a definite value,
  // never a hang, never a throw.
  VeritasService service;
  service.add_shard("main", config_a());
  Query query;
  query.log = make_logs(1)[0];
  query.shard = "main";
  query.options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const Expected<InferenceResult> result =
      service.submit(std::move(query)).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_TRUE(stats.reconciled());
}

TEST(VeritasService, LruEvictionBoundsCacheEntries) {
  ServiceOptions options;
  options.num_threads = 1;
  options.cache_capacity = 4;
  options.cache_shards = 1;
  VeritasService service(options);
  service.add_shard("main", config_a());
  const auto logs = make_logs(8);
  for (auto& future : service.submit_batch(logs, "main")) future.get();
  const ServiceStats stats = service.stats();
  EXPECT_LE(stats.cache_entries, 4u);
  EXPECT_GE(stats.cache_evictions, 4u);
}

}  // namespace
}  // namespace veritas::service
