#include "video/video.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/expects.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::video {
namespace {

TEST(SsimModel, CalibratedEndpoints) {
  // Paper §4.1: lowest-quality mean 0.908, highest 0.986.
  EXPECT_NEAR(ssim_model(0.1), 0.908, 0.002);
  EXPECT_NEAR(ssim_model(4.0), 0.986, 0.002);
}

TEST(SsimModel, MonotoneInBitrate) {
  double prev = 0.0;
  for (double r = 0.1; r <= 10.0; r *= 1.5) {
    const double s = ssim_model(r);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(SsimModel, DifficultyLowersSsim) {
  EXPECT_LT(ssim_model(1.0, 1.5), ssim_model(1.0, 1.0));
  EXPECT_GT(ssim_model(1.0, 0.7), ssim_model(1.0, 1.0));
}

TEST(SsimModel, StaysBelowOne) {
  EXPECT_LT(ssim_model(1000.0), 1.0);
}

TEST(SsimDb, KnownValue) {
  // ssim 0.99 -> -10*log10(0.01) = 20 dB.
  EXPECT_NEAR(ssim_db(0.99), 20.0, 1e-9);
}

TEST(SsimDb, RejectsOne) {
  EXPECT_THROW(ssim_db(1.0), veritas::ContractViolation);
}

TEST(Video, ChunkCountFromDuration) {
  const Video v(default_video_config());
  EXPECT_EQ(v.num_chunks(), 300u);  // 600 s / 2 s
  EXPECT_DOUBLE_EQ(v.duration_s(), 600.0);
}

TEST(Video, SizesScaleWithBitrate) {
  const Video v(default_video_config());
  for (std::size_t n = 0; n < 10; ++n) {
    for (std::size_t q = 1; q < v.num_qualities(); ++q) {
      EXPECT_GT(v.chunk_size_bytes(n, q), v.chunk_size_bytes(n, q - 1));
    }
  }
}

TEST(Video, SizesMatchNominalOnAverage) {
  const Video v(default_video_config());
  for (std::size_t q = 0; q < v.num_qualities(); ++q) {
    double total = 0.0;
    for (std::size_t n = 0; n < v.num_chunks(); ++n) {
      total += v.chunk_size_bytes(n, q);
    }
    const double mean = total / double(v.num_chunks());
    const double nominal = v.bitrate_mbps(q) * 1e6 / 8.0 * 2.0;
    EXPECT_NEAR(mean / nominal, 1.0, 0.05) << "quality " << q;
  }
}

TEST(Video, SsimMonotoneInQualityPerChunk) {
  const Video v(default_video_config());
  for (std::size_t n = 0; n < v.num_chunks(); ++n) {
    for (std::size_t q = 1; q < v.num_qualities(); ++q) {
      EXPECT_GT(v.chunk_ssim(n, q), v.chunk_ssim(n, q - 1));
    }
  }
}

TEST(Video, DeterministicInSeed) {
  const Video a(default_video_config(42));
  const Video b(default_video_config(42));
  const Video c(default_video_config(43));
  EXPECT_DOUBLE_EQ(a.chunk_size_bytes(17, 2), b.chunk_size_bytes(17, 2));
  EXPECT_NE(a.chunk_size_bytes(17, 2), c.chunk_size_bytes(17, 2));
}

TEST(Video, VbrDisabledGivesExactSizes) {
  VideoConfig cfg = default_video_config();
  cfg.vbr_sigma = 0.0;
  const Video v(cfg);
  const double nominal = v.bitrate_mbps(1) * 1e6 / 8.0 * 2.0;
  for (std::size_t n = 0; n < 10; ++n) {
    EXPECT_DOUBLE_EQ(v.chunk_size_bytes(n, 1), nominal);
  }
}

TEST(Video, WithLadderKeepsContent) {
  const Video v(default_video_config());
  const Video high = v.with_ladder(high_ladder());
  EXPECT_EQ(high.num_chunks(), v.num_chunks());
  // Same per-chunk jitter: size ratio equals bitrate ratio.
  const double ratio = high.chunk_size_bytes(5, 0) / v.chunk_size_bytes(5, 0);
  EXPECT_NEAR(ratio, high.bitrate_mbps(0) / v.bitrate_mbps(0), 1e-9);
}

TEST(Video, RejectsInvalidConfig) {
  VideoConfig cfg = default_video_config();
  cfg.ladder.clear();
  EXPECT_THROW(Video{cfg}, veritas::ContractViolation);

  cfg = default_video_config();
  cfg.ladder = {{"a", 2.0}, {"b", 1.0}};  // descending
  EXPECT_THROW(Video{cfg}, veritas::ContractViolation);
}

TEST(Video, BoundsChecked) {
  const Video v(default_video_config());
  EXPECT_THROW(v.chunk_size_bytes(v.num_chunks(), 0),
               veritas::ContractViolation);
  EXPECT_THROW(v.chunk_ssim(0, v.num_qualities()),
               veritas::ContractViolation);
}

TEST(LadderPresets, DefaultCoversPaperRange) {
  const Ladder ladder = default_ladder();
  EXPECT_DOUBLE_EQ(ladder.front().bitrate_mbps, 0.1);
  EXPECT_DOUBLE_EQ(ladder.back().bitrate_mbps, 4.0);
}

TEST(LadderPresets, HighLadderDropsLowRungsAddsHigh) {
  const Ladder high = high_ladder();
  EXPECT_GE(high.front().bitrate_mbps, 1.0);
  EXPECT_DOUBLE_EQ(high.back().bitrate_mbps, 8.0);
}

TEST(LadderPresets, LowHighLadderHasTwoRungs) {
  EXPECT_EQ(low_high_ladder().size(), 2u);
}

}  // namespace
}  // namespace veritas::video
