// SIMD/scalar kernel equivalence:
//
//  * raw-kernel level, k ∈ {1, 3, 8, 17, 32}: the viterbi / forward /
//    backward steps must be *bit-identical* between tables (the SIMD
//    kernels vectorize across outputs and broadcast the sequential
//    input, preserving each output's accumulation order); the fused
//    pair-posterior normalizer and exp rows agree within tight
//    tolerances. Non-lane-multiple k exercises the padded tail columns.
//  * Ehmm level, k ∈ {3, 8, 17, 32}: identical Viterbi paths, scores
//    and backpointer-driven decisions, posteriors within 1e-9 (observed
//    ~1e-13: only the exp approximation and the pair reduction differ),
//    at 1 and 4 inference threads.
//  * the configurable A^Δ precompute window: a tiny dense table plus
//    the mutex-guarded fallback must reproduce the full-table results
//    bit-for-bit.
//  * the opt-in AVX-512/FMA tier (PR 7): FMA-free kernels (viterbi,
//    emission rows, estimate_batch) bit-identical to scalar; fused
//    recursions and posteriors within the 1e-12 gate; dispatch
//    resolution (kAuto never picks it, kForceAvx512 falls back when
//    absent) reported truthfully by backend_name().
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/inference_engine.hpp"
#include "core/test_helpers.hpp"
#include "core/veritas.hpp"
#include "math/simd_kernels.hpp"
#include "trace/trace_generator.hpp"

namespace sk = veritas::math::simd_kernels;

namespace {

using namespace veritas;
using core::ChunkObservation;
using core::Ehmm;

bool simd_available() { return sk::simd_ops() != nullptr; }
bool avx512_available() { return sk::avx512_ops() != nullptr; }

/// Random row-stochastic transition over k states (k = 1 allowed).
core::TransitionModel random_transition(std::size_t k, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.05, 1.0);
  math::Matrix a(k, k, 0.0);
  std::vector<double> initial(k, 0.0);
  double init_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      a(i, j) = dist(rng);
      row_sum += a(i, j);
    }
    for (std::size_t j = 0; j < k; ++j) a(i, j) /= row_sum;
    initial[i] = dist(rng);
    init_sum += initial[i];
  }
  for (double& u : initial) u /= init_sum;
  return core::TransitionModel(std::move(a), std::move(initial));
}

/// Padded dense tables of A^Δ for the raw kernel harness.
sk::DeltaTables tables_of(const core::TransitionModel& model,
                          std::size_t delta) {
  const core::TransitionModel::PowerView view = model.power_view(delta);
  sk::DeltaTables t;
  t.p = view.p->row_data(0);
  t.t = view.transposed->row_data(0);
  t.log_p = view.log_p->row_data(0);
  t.log_t = view.log_transposed->row_data(0);
  t.stride = view.p->col_stride();
  return t;
}

/// Padded random row: logical entries from dist, pads = `pad`.
std::vector<double> padded_row(std::size_t k, double pad, std::mt19937_64& rng,
                               double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  std::vector<double> row(math::padded_cols(k), pad);
  for (std::size_t i = 0; i < k; ++i) row[i] = dist(rng);
  return row;
}

class KernelEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelEquivalence, RawKernelsMatchScalar) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD table in this build";
  const std::size_t k = GetParam();
  const std::size_t stride = math::padded_cols(k);
  core::TransitionModel model = random_transition(k, 100 + k);
  model.precompute_powers(4);
  const sk::DeltaTables tables = tables_of(model, 2);
  ASSERT_EQ(tables.stride, stride);

  const sk::KernelOps& scalar = sk::scalar_ops();
  const sk::KernelOps& simd = *sk::simd_ops();
  std::mt19937_64 rng(900 + k);

  for (int round = 0; round < 25; ++round) {
    // Log-domain inputs for viterbi (pads -inf), probability-domain for
    // the sum-product kernels (pads 0).
    const std::vector<double> prev_log =
        padded_row(k, -std::numeric_limits<double>::infinity(), rng, -40.0,
                   0.0);
    const std::vector<double> e_n =
        padded_row(k, -std::numeric_limits<double>::infinity(), rng, -40.0,
                   0.0);
    const std::vector<double> prev_prob = padded_row(k, 0.0, rng, 0.0, 1.0);
    const std::vector<double> em = padded_row(k, 0.0, rng, 0.0, 1.0);
    const std::vector<double> beta = padded_row(k, 0.0, rng, 0.0, 2.0);
    const std::vector<double> alpha = padded_row(k, 0.0, rng, 0.0, 1.0);

    // Viterbi: scores and backpointers bit-identical.
    std::vector<double> curr_a(stride, 0.0), curr_b(stride, 0.0);
    std::vector<std::uint32_t> back_a(stride, 0), back_b(stride, 0);
    scalar.viterbi_step(prev_log.data(), tables, k, e_n.data(),
                        curr_a.data(), back_a.data());
    simd.viterbi_step(prev_log.data(), tables, k, e_n.data(), curr_b.data(),
                      back_b.data());
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(curr_a[i], curr_b[i]) << "k=" << k << " i=" << i;
      EXPECT_EQ(back_a[i], back_b[i]) << "k=" << k << " i=" << i;
    }

    // Forward: bit-identical.
    std::vector<double> row_a(stride, 0.0), row_b(stride, 0.0);
    scalar.forward_step(prev_prob.data(), tables, k, em.data(),
                        row_a.data());
    simd.forward_step(prev_prob.data(), tables, k, em.data(), row_b.data());
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(row_a[i], row_b[i]) << "k=" << k << " i=" << i;
    }

    // Backward: beta bit-identical; fused pair total within tolerance
    // of the scalar (historical-order) accumulation.
    std::vector<double> beta_a(stride, 0.0), beta_b(stride, 0.0);
    double pair_a = 0.0, pair_b = 0.0;
    scalar.backward_step(tables, k, em.data(), beta.data(), 1.375,
                         beta_a.data(), alpha.data(), &pair_a);
    simd.backward_step(tables, k, em.data(), beta.data(), 1.375,
                       beta_b.data(), alpha.data(), &pair_b);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(beta_a[i], beta_b[i]) << "k=" << k << " i=" << i;
    }
    EXPECT_NEAR(pair_a, pair_b, 1e-12 * std::max(1.0, std::abs(pair_a)));
    // Standalone pair kernel agrees with the fused accumulation.
    const double pair_c =
        simd.pair_total(alpha.data(), tables, k, em.data(), beta.data());
    EXPECT_NEAR(pair_b, pair_c, 1e-12 * std::max(1.0, std::abs(pair_b)));

    // exp rows (full padded stride, -inf pads -> exact 0).
    std::vector<double> em_a(stride, -1.0), em_b(stride, -1.0);
    scalar.exp_rows(e_n.data(), -3.0, stride, em_a.data());
    simd.exp_rows(e_n.data(), -3.0, stride, em_b.data());
    for (std::size_t i = 0; i < stride; ++i) {
      EXPECT_NEAR(em_a[i], em_b[i], 5e-15 * em_a[i] + 0.0)
          << "k=" << k << " i=" << i;
    }
    for (std::size_t i = k; i < stride; ++i) EXPECT_EQ(em_b[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(StateCounts, KernelEquivalence,
                         ::testing::Values(1, 3, 8, 17, 32));

// The opt-in AVX-512 tier: the FMA-free kernels (viterbi, emission
// log-pdf row) stay *bit-identical* to the scalar reference; the fused
// sum-product recursions (forward / backward / pair total) and the
// transcendental rows agree within the advertised 1e-12 relative gate.
TEST_P(KernelEquivalence, Avx512RawKernelsWithinGate) {
  if (!avx512_available()) {
    GTEST_SKIP() << "no AVX-512 table in this build/CPU";
  }
  const std::size_t k = GetParam();
  const std::size_t stride = math::padded_cols(k);
  core::TransitionModel model = random_transition(k, 500 + k);
  model.precompute_powers(4);
  const sk::DeltaTables tables = tables_of(model, 2);

  const sk::KernelOps& scalar = sk::scalar_ops();
  const sk::KernelOps& avx = *sk::avx512_ops();
  std::mt19937_64 rng(1300 + k);

  const double sigma = 0.75;
  const double log_sigma = std::log(sigma);
  const double half_log_2pi = 0.5 * std::log(8.0 * std::atan(1.0));

  for (int round = 0; round < 25; ++round) {
    const std::vector<double> prev_log =
        padded_row(k, -std::numeric_limits<double>::infinity(), rng, -40.0,
                   0.0);
    const std::vector<double> e_n =
        padded_row(k, -std::numeric_limits<double>::infinity(), rng, -40.0,
                   0.0);
    const std::vector<double> prev_prob = padded_row(k, 0.0, rng, 0.0, 1.0);
    const std::vector<double> em = padded_row(k, 0.0, rng, 0.0, 1.0);
    const std::vector<double> beta = padded_row(k, 0.0, rng, 0.0, 2.0);
    const std::vector<double> alpha = padded_row(k, 0.0, rng, 0.0, 1.0);
    const std::vector<double> means = padded_row(k, 0.0, rng, 0.0, 12.0);

    // Viterbi: max-plus has no mul-add to fuse — bit-identical.
    std::vector<double> curr_a(stride, 0.0), curr_b(stride, 0.0);
    std::vector<std::uint32_t> back_a(stride, 0), back_b(stride, 0);
    scalar.viterbi_step(prev_log.data(), tables, k, e_n.data(),
                        curr_a.data(), back_a.data());
    avx.viterbi_step(prev_log.data(), tables, k, e_n.data(), curr_b.data(),
                     back_b.data());
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(curr_a[i], curr_b[i]) << "k=" << k << " i=" << i;
      EXPECT_EQ(back_a[i], back_b[i]) << "k=" << k << " i=" << i;
    }

    // Emission log-pdf row: FMA-free — bit-identical (unpadded input
    // row, the zero-copy cache path's shape).
    std::vector<double> erow_a(stride, -1.0), erow_b(stride, -1.0);
    scalar.emission_log_pdf_row(1.875, means.data(), k, stride, sigma,
                                log_sigma, half_log_2pi, erow_a.data());
    avx.emission_log_pdf_row(1.875, means.data(), k, stride, sigma,
                             log_sigma, half_log_2pi, erow_b.data());
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(erow_a[i], erow_b[i]) << "k=" << k << " i=" << i;
    }
    for (std::size_t i = k; i < stride; ++i) {
      EXPECT_EQ(erow_b[i], -std::numeric_limits<double>::infinity());
    }

    // Forward: the fused vmuladd reassociates one rounding per term.
    std::vector<double> row_a(stride, 0.0), row_b(stride, 0.0);
    scalar.forward_step(prev_prob.data(), tables, k, em.data(),
                        row_a.data());
    avx.forward_step(prev_prob.data(), tables, k, em.data(), row_b.data());
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(row_a[i], row_b[i],
                  1e-12 * std::max(1.0, std::abs(row_a[i])))
          << "k=" << k << " i=" << i;
    }

    // Backward + pair total: same gate.
    std::vector<double> beta_a(stride, 0.0), beta_b(stride, 0.0);
    double pair_a = 0.0, pair_b = 0.0;
    scalar.backward_step(tables, k, em.data(), beta.data(), 1.375,
                         beta_a.data(), alpha.data(), &pair_a);
    avx.backward_step(tables, k, em.data(), beta.data(), 1.375,
                      beta_b.data(), alpha.data(), &pair_b);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(beta_a[i], beta_b[i],
                  1e-12 * std::max(1.0, std::abs(beta_a[i])))
          << "k=" << k << " i=" << i;
    }
    EXPECT_NEAR(pair_a, pair_b, 1e-12 * std::max(1.0, std::abs(pair_a)));
    const double pair_c =
        avx.pair_total(alpha.data(), tables, k, em.data(), beta.data());
    EXPECT_NEAR(pair_b, pair_c, 1e-12 * std::max(1.0, std::abs(pair_b)));

    // exp rows: same Cephes polynomial, fused inner steps.
    std::vector<double> em_a(stride, -1.0), em_b(stride, -1.0);
    scalar.exp_rows(e_n.data(), -3.0, stride, em_a.data());
    avx.exp_rows(e_n.data(), -3.0, stride, em_b.data());
    for (std::size_t i = 0; i < stride; ++i) {
      EXPECT_NEAR(em_a[i], em_b[i], 1e-13 * em_a[i] + 0.0)
          << "k=" << k << " i=" << i;
    }
    for (std::size_t i = k; i < stride; ++i) EXPECT_EQ(em_b[i], 0.0);
  }
}

/// Ehmm over k states (k = ceil(max/eps) + 1 with eps 0.5).
core::VeritasConfig config_for_states(std::size_t k) {
  core::VeritasConfig cfg;
  cfg.epsilon_mbps = 0.5;
  cfg.max_mbps = 0.5 * static_cast<double>(k - 1);
  return cfg;
}

std::vector<sim::SessionLog> test_logs() {
  std::vector<sim::SessionLog> logs;
  for (const std::uint64_t seed : {11ull, 29ull}) {
    const auto gtbw = trace::make_traces(trace::TraceFamily::kWideRange, 1,
                                         seed)[0];
    logs.push_back(core::testing::deployed_log(gtbw, 40));
  }
  return logs;
}

class EhmmEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EhmmEquivalence, SimdMatchesScalarAcrossThreads) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD table in this build";
  const std::size_t k = GetParam();
  const core::VeritasConfig cfg = config_for_states(k);
  const core::InferenceEngine engine(cfg);
  ASSERT_EQ(engine.ehmm().space().size(), k);
  const auto logs = test_logs();

  std::vector<core::VeritasResult> scalar_results;
  {
    const sk::ScopedMode mode(sk::Mode::kForceScalar);
    for (const auto& log : logs) scalar_results.push_back(engine.infer(log));
  }

  const sk::ScopedMode mode(sk::Mode::kForceSimd);
  for (const std::size_t threads : {1u, 4u}) {
    const std::vector<core::VeritasResult> simd_results =
        engine.infer_batch(logs, threads);
    ASSERT_EQ(simd_results.size(), scalar_results.size());
    for (std::size_t s = 0; s < logs.size(); ++s) {
      const core::VeritasResult& a = scalar_results[s];
      const core::VeritasResult& b = simd_results[s];
      // Viterbi decisions identical (the max-plus kernel is
      // bit-identical and emissions are bitwise equal).
      ASSERT_EQ(a.map_states_mbps.size(), b.map_states_mbps.size());
      for (std::size_t n = 0; n < a.map_states_mbps.size(); ++n) {
        EXPECT_EQ(a.map_states_mbps[n], b.map_states_mbps[n])
            << "k=" << k << " session=" << s << " n=" << n;
      }
      // Posteriors within the advertised tolerance (issue: 1e-9; the
      // only divergences are the exp approximation and the pair-total
      // lane reduction).
      EXPECT_LE(a.posterior_marginals.max_abs_diff(b.posterior_marginals),
                1e-9)
          << "k=" << k << " session=" << s;
      EXPECT_NEAR(a.log_likelihood, b.log_likelihood,
                  1e-9 * std::abs(a.log_likelihood))
          << "k=" << k << " session=" << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(StateCounts, EhmmEquivalence,
                         ::testing::Values(3, 8, 17, 32));

// Forced AVX-512 end to end: identical Viterbi decisions (the max-plus
// kernel and the emission log-pdf rows are bit-identical), posteriors
// and log-likelihood within the 1e-12 tier gate.
TEST_P(EhmmEquivalence, Avx512MatchesScalarWithinGate) {
  if (!avx512_available()) {
    GTEST_SKIP() << "no AVX-512 table in this build/CPU";
  }
  const std::size_t k = GetParam();
  const core::VeritasConfig cfg = config_for_states(k);
  const core::InferenceEngine engine(cfg);
  const auto logs = test_logs();

  std::vector<core::VeritasResult> scalar_results;
  {
    const sk::ScopedMode mode(sk::Mode::kForceScalar);
    for (const auto& log : logs) scalar_results.push_back(engine.infer(log));
  }

  const sk::ScopedMode mode(sk::Mode::kForceAvx512);
  ASSERT_STREQ(sk::backend_name(), "avx512");
  for (const std::size_t threads : {1u, 4u}) {
    const std::vector<core::VeritasResult> avx_results =
        engine.infer_batch(logs, threads);
    ASSERT_EQ(avx_results.size(), scalar_results.size());
    for (std::size_t s = 0; s < logs.size(); ++s) {
      const core::VeritasResult& a = scalar_results[s];
      const core::VeritasResult& b = avx_results[s];
      ASSERT_EQ(a.map_states_mbps.size(), b.map_states_mbps.size());
      for (std::size_t n = 0; n < a.map_states_mbps.size(); ++n) {
        EXPECT_EQ(a.map_states_mbps[n], b.map_states_mbps[n])
            << "k=" << k << " session=" << s << " n=" << n;
      }
      EXPECT_LE(a.posterior_marginals.max_abs_diff(b.posterior_marginals),
                1e-12)
          << "k=" << k << " session=" << s;
      EXPECT_NEAR(a.log_likelihood, b.log_likelihood,
                  1e-12 * std::abs(a.log_likelihood))
          << "k=" << k << " session=" << s;
    }
  }
}

// Dispatch resolution: kForceAvx512 resolves to the opt-in table when
// compiled in and the CPU has it, and falls back to the default vector
// tier (then scalar) otherwise — backend_name() always reports the tier
// actually serving the kernels.
TEST(KernelDispatch, ForcedAvx512ResolvesOrFallsBack) {
  const sk::ScopedMode mode(sk::Mode::kForceAvx512);
  if (avx512_available()) {
    EXPECT_STREQ(sk::backend_name(), "avx512");
  } else if (simd_available()) {
    EXPECT_STREQ(sk::backend_name(), sk::simd_ops()->name);
  } else {
    EXPECT_STREQ(sk::backend_name(), "scalar");
  }
}

// Default dispatch never auto-selects the FMA tier: kAuto must resolve
// to the bit-exact default table even on AVX-512 hosts (the tier is
// opt-in via VERITAS_SIMD=avx512 or the forced mode only).
TEST(KernelDispatch, AutoNeverSelectsAvx512) {
  if (std::getenv("VERITAS_SIMD") != nullptr) {
    GTEST_SKIP() << "VERITAS_SIMD overrides auto dispatch in this run";
  }
  const sk::ScopedMode mode(sk::Mode::kAuto);
  if (simd_available()) {
    EXPECT_STREQ(sk::backend_name(), sk::simd_ops()->name);
  } else {
    EXPECT_STREQ(sk::backend_name(), "scalar");
  }
}

TEST(EhmmEquivalence, MultiWindowEstimatorWithinTolerance) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD table in this build";
  core::VeritasConfig cfg;
  cfg.estimator = core::EmissionModel::Estimator::kMultiWindow;
  const core::InferenceEngine engine(cfg);
  const auto logs = test_logs();
  for (const auto& log : logs) {
    core::VeritasResult a, b;
    {
      const sk::ScopedMode mode(sk::Mode::kForceScalar);
      a = engine.infer(log);
    }
    {
      const sk::ScopedMode mode(sk::Mode::kForceSimd);
      b = engine.infer(log);
    }
    for (std::size_t n = 0; n < a.map_states_mbps.size(); ++n) {
      EXPECT_EQ(a.map_states_mbps[n], b.map_states_mbps[n]);
    }
    EXPECT_LE(a.posterior_marginals.max_abs_diff(b.posterior_marginals),
              1e-9);
  }
}

// A tiny precompute window forces the mutex-guarded fallback (and the
// legacy strided kernels) for the long-gap deltas — results must be
// bit-identical to the full dense table, in both dispatch modes.
TEST(PrecomputedPowerWindow, SmallWindowBitIdenticalToLarge) {
  using core::testing::warm_observation;
  // Session with rebuffer-sized gaps: window deltas 0, 1, 2, 5, 13 with
  // δ = 5 s — everything past Δ=1 exercises the fallback on the small
  // table.
  std::vector<ChunkObservation> obs;
  obs.push_back(warm_observation(0.0, 2.0));
  obs.push_back(warm_observation(3.0, 2.5));
  obs.push_back(warm_observation(8.0, 3.0));
  obs.push_back(warm_observation(18.0, 2.0));
  obs.push_back(warm_observation(44.0, 1.5));
  obs.push_back(warm_observation(110.0, 2.5));

  const auto make = [](std::size_t powers) {
    core::StateSpace space(0.5, 10.0);
    core::TransitionModel transition =
        core::TransitionModel::tridiagonal(space.size());
    core::EmissionModel emission(0.5);
    return Ehmm(std::move(space), std::move(transition), std::move(emission),
                5.0, powers);
  };
  const Ehmm small = make(1);
  const Ehmm full = make(64);
  EXPECT_EQ(small.transition().precomputed_powers(), 2u);

  for (const sk::Mode m : {sk::Mode::kForceScalar, sk::Mode::kForceSimd}) {
    if (m == sk::Mode::kForceSimd && !simd_available()) continue;
    const sk::ScopedMode mode(m);
    Ehmm::Scratch scratch_a, scratch_b;
    const Ehmm::InferencePass a = small.infer_fused(obs, scratch_a);
    const Ehmm::InferencePass b = full.infer_fused(obs, scratch_b);
    EXPECT_EQ(a.viterbi.states, b.viterbi.states);
    EXPECT_EQ(a.viterbi.scores.max_abs_diff(b.viterbi.scores), 0.0);
    EXPECT_EQ(a.forward_backward.gamma.max_abs_diff(b.forward_backward.gamma),
              0.0);
    EXPECT_EQ(a.forward_backward.log_likelihood,
              b.forward_backward.log_likelihood);
    ASSERT_EQ(a.forward_backward.pair_totals.size(),
              b.forward_backward.pair_totals.size());
    for (std::size_t n = 0; n < a.forward_backward.pair_totals.size(); ++n) {
      // The fallback always accumulates the pair total in scalar order,
      // so it is exact against the dense scalar kernel; the dense SIMD
      // kernel reassociates across lanes (ulp-level).
      if (m == sk::Mode::kForceScalar) {
        EXPECT_EQ(a.forward_backward.pair_totals[n],
                  b.forward_backward.pair_totals[n]);
      } else {
        const double want = a.forward_backward.pair_totals[n];
        EXPECT_NEAR(want, b.forward_backward.pair_totals[n],
                    1e-12 * std::max(1.0, std::abs(want)));
      }
    }
    if (m == sk::Mode::kForceScalar) {
      util::Rng rng_a(42), rng_b(42);
      EXPECT_EQ(small.sample_posterior(a.viterbi, a.forward_backward,
                                       scratch_a, rng_a),
                full.sample_posterior(b.viterbi, b.forward_backward,
                                      scratch_b, rng_b));
    }
  }
}

// EngineOptions still overrides the config when explicitly non-zero.
TEST(PrecomputedPowerWindow, EngineOptionsOverrideConfig) {
  core::VeritasConfig cfg;
  cfg.precomputed_powers = 2;
  core::EngineOptions options;
  options.precomputed_powers = 16;
  const core::InferenceEngine engine(cfg, options);
  EXPECT_GE(engine.ehmm().transition().precomputed_powers(), 16u);
  const core::InferenceEngine config_engine(cfg);
  // Config value honored (multi-window floors at kMaxSpanWindows only
  // for that estimator; full-TCP takes the config verbatim).
  EXPECT_EQ(config_engine.ehmm().transition().precomputed_powers(), 3u);
}

}  // namespace
