// Golden equivalence and determinism tests for the fused inference
// engine: the single-pass path must be bit-identical to the seed
// two-pass path (separate Viterbi and forward-backward runs, each with
// its own emission computation), and infer_batch must be independent of
// thread count.
#include "core/inference_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/test_helpers.hpp"
#include "core/veritas.hpp"
#include "trace/trace_generator.hpp"
#include "util/expects.hpp"

namespace veritas::core {
namespace {

using testing::deployed_log;

std::vector<VeritasConfig> golden_configs() {
  VeritasConfig full;  // paper defaults
  VeritasConfig multi_window;
  multi_window.estimator = EmissionModel::Estimator::kMultiWindow;
  VeritasConfig banded;
  banded.prior = TransitionPrior::kBanded;
  banded.sampler.last_state = SamplerConfig::LastState::kPosterior;
  VeritasConfig no_tcp;
  no_tcp.estimator = EmissionModel::Estimator::kNoTcpState;
  no_tcp.interpolation = Interpolation::kHold;
  return {full, multi_window, banded, no_tcp};
}

sim::SessionLog shared_log(std::uint64_t seed = 2024) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, seed);
  return deployed_log(traces[0]);
}

void expect_bit_identical(const Ehmm::ViterbiResult& a,
                          const Ehmm::ViterbiResult& b) {
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.log_likelihood, b.log_likelihood);  // exact, not NEAR
  ASSERT_EQ(a.scores.rows(), b.scores.rows());
  EXPECT_EQ(a.scores.max_abs_diff(b.scores), 0.0);
}

void expect_bit_identical(const Ehmm::ForwardBackwardResult& a,
                          const Ehmm::ForwardBackwardResult& b) {
  EXPECT_EQ(a.log_likelihood, b.log_likelihood);
  ASSERT_EQ(a.gamma.rows(), b.gamma.rows());
  EXPECT_EQ(a.gamma.max_abs_diff(b.gamma), 0.0);
  ASSERT_EQ(a.pair_totals.size(), b.pair_totals.size());
  for (std::size_t n = 0; n < a.pair_totals.size(); ++n) {
    EXPECT_EQ(a.pair_totals[n], b.pair_totals[n]) << "pair total " << n;
  }
}

void expect_bit_identical(const VeritasResult& a, const VeritasResult& b) {
  EXPECT_EQ(a.log_likelihood, b.log_likelihood);
  EXPECT_EQ(a.map_states_mbps, b.map_states_mbps);
  EXPECT_EQ(a.posterior_marginals.max_abs_diff(b.posterior_marginals), 0.0);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  auto expect_trace_equal = [](const trace::BandwidthTrace& x,
                               const trace::BandwidthTrace& y) {
    ASSERT_EQ(x.windows(), y.windows());
    for (std::size_t w = 0; w < x.windows(); ++w) {
      EXPECT_EQ(x.values_mbps()[w], y.values_mbps()[w]);
    }
  };
  expect_trace_equal(a.map_trace, b.map_trace);
  for (std::size_t s = 0; s < a.samples.size(); ++s) {
    expect_trace_equal(a.samples[s], b.samples[s]);
  }
}

TEST(InferenceEngine, FusedPassMatchesSeedTwoPassBitExactly) {
  const sim::SessionLog log = shared_log();
  for (const VeritasConfig& cfg : golden_configs()) {
    const InferenceEngine engine(cfg);
    const auto observations = observations_from_log(log);

    // Seed two-pass path: independent runs, each recomputing emissions.
    const Ehmm& ehmm = engine.ehmm();
    const Ehmm::ViterbiResult viterbi = ehmm.viterbi(observations);
    const Ehmm::ForwardBackwardResult fb = ehmm.forward_backward(observations);

    const Ehmm::InferencePass pass = engine.infer_session(observations);
    expect_bit_identical(pass.viterbi, viterbi);
    expect_bit_identical(pass.forward_backward, fb);
  }
}

TEST(InferenceEngine, ScratchReuseAcrossSessionsIsClean) {
  // One scratch arena reused across sessions of different lengths must
  // not leak state between sessions.
  const InferenceEngine engine(VeritasConfig{});
  Ehmm::Scratch scratch;
  const sim::SessionLog long_log = shared_log(2024);
  const sim::SessionLog other_log = shared_log(7);

  const auto long_obs = observations_from_log(long_log);
  const auto short_obs = std::vector<ChunkObservation>(
      long_obs.begin(), long_obs.begin() + 5);

  const auto warm = engine.infer_session(observations_from_log(other_log),
                                         scratch);
  (void)warm;
  const auto reused_short = engine.infer_session(short_obs, scratch);
  const auto fresh_short = engine.infer_session(short_obs);
  expect_bit_identical(reused_short.viterbi, fresh_short.viterbi);
  expect_bit_identical(reused_short.forward_backward,
                       fresh_short.forward_backward);

  const auto reused_long = engine.infer_session(long_obs, scratch);
  const auto fresh_long = engine.infer_session(long_obs);
  expect_bit_identical(reused_long.viterbi, fresh_long.viterbi);
  expect_bit_identical(reused_long.forward_backward,
                       fresh_long.forward_backward);
}

TEST(InferenceEngine, SeededSamplesMatchFacade) {
  // The facade delegates to the engine; both must reproduce the seed
  // sampling protocol (Rng(seed).fork(k) per sample) exactly.
  const sim::SessionLog log = shared_log();
  for (const VeritasConfig& cfg : golden_configs()) {
    const Veritas facade(cfg);
    const InferenceEngine engine(cfg);
    expect_bit_identical(facade.infer(log), engine.infer(log));
  }
}

TEST(InferenceEngine, BatchMatchesSerialForEveryThreadCount) {
  std::vector<sim::SessionLog> logs;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    logs.push_back(shared_log(seed));
  }
  const InferenceEngine engine(VeritasConfig{});

  std::vector<VeritasResult> serial;
  serial.reserve(logs.size());
  for (const auto& log : logs) serial.push_back(engine.infer(log));

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const std::vector<VeritasResult> batch =
        engine.infer_batch(logs, threads);
    ASSERT_EQ(batch.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_bit_identical(batch[i], serial[i]);
    }
  }
}

TEST(InferenceEngine, BatchOfEmptySetIsEmpty) {
  const InferenceEngine engine(VeritasConfig{});
  EXPECT_TRUE(engine.infer_batch({}).empty());
}

TEST(InferenceEngine, SmallPowerTableFallsBackBitExactly) {
  // Deltas beyond the dense table go through the mutex-guarded memo and
  // the strided/log-on-the-fly recursion loops; results must not change.
  const sim::SessionLog log = shared_log();
  VeritasConfig cfg;
  EngineOptions tiny;
  tiny.precomputed_powers = 1;  // only A^0 and A^1 are dense
  const InferenceEngine small(cfg, tiny);
  const InferenceEngine big(cfg);
  const auto observations = observations_from_log(log);

  const auto pass_small = small.infer_session(observations);
  const auto pass_big = big.infer_session(observations);
  expect_bit_identical(pass_small.viterbi, pass_big.viterbi);
  expect_bit_identical(pass_small.forward_backward, pass_big.forward_backward);
}

TEST(InferenceEngine, RejectsInvalidConfig) {
  VeritasConfig bad;
  bad.delta_s = 0.0;
  EXPECT_THROW(InferenceEngine{bad}, veritas::ContractViolation);
  bad = VeritasConfig{};
  bad.num_samples = 0;
  EXPECT_THROW(InferenceEngine{bad}, veritas::ContractViolation);
}

TEST(InferenceEngine, SharedAcrossThreadsViaFacade) {
  // engine_ptr() hands out shared ownership; results through the shared
  // engine equal results through the facade.
  const Veritas facade;
  const std::shared_ptr<const InferenceEngine> engine = facade.engine_ptr();
  const sim::SessionLog log = shared_log();
  expect_bit_identical(facade.infer(log), engine->infer(log));
}

}  // namespace
}  // namespace veritas::core
