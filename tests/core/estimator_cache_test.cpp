// The cross-session (W, S) estimator cache (PR 5 tentpole): memo
// hit-vs-miss bit-identity, candidate-table (config/epoch) invalidation,
// quantized keying, capacity flushes, and the engine / Baum-Welch
// plumbing that shares one cache across sessions, lanes and EM
// iterations.
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/baum_welch.hpp"
#include "core/estimator_cache.hpp"
#include "core/inference_engine.hpp"
#include "core/test_helpers.hpp"
#include "trace/trace_generator.hpp"

namespace {

using namespace veritas;
using core::ChunkObservation;
using core::Ehmm;
using core::EstimatorCache;

std::vector<ChunkObservation> session_obs(std::uint64_t seed,
                                          std::size_t chunks = 40) {
  const auto gtbw =
      trace::make_traces(trace::TraceFamily::kFccLike, 1, seed)[0];
  return core::observations_from_log(
      core::testing::deployed_log(gtbw, chunks));
}

void expect_matrix_eq(const math::Matrix& a, const math::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t n = 0; n < a.rows(); ++n) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      EXPECT_EQ(a(n, i), b(n, i)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(EstimatorCache, HitIsBitIdenticalToMiss) {
  const Ehmm ehmm = core::testing::small_ehmm();
  const auto obs = session_obs(7);

  EstimatorCache cache;
  math::Matrix cold, warm;
  ehmm.emission_means_into(obs, cold, cache);
  const EstimatorCache::Stats after_cold = cache.stats();
  EXPECT_GT(after_cold.insertions, 0u);

  ehmm.emission_means_into(obs, warm, cache);
  const EstimatorCache::Stats after_warm = cache.stats();
  // Every tuple of the second pass hits (the session repeats tuples too,
  // so hits exceed insertions overall).
  EXPECT_EQ(after_warm.hits - after_cold.hits, obs.size());
  EXPECT_EQ(after_warm.insertions, after_cold.insertions);
  expect_matrix_eq(cold, warm);
}

TEST(EstimatorCache, SharedCacheIsolatesModelsByTableId) {
  // Three models over one cache: a reference, a different TcpConfig and
  // a different candidate grid. Each must read only its own rows.
  const auto obs = session_obs(11);
  core::StateSpace space(1.0, 3.0);
  net::TcpConfig bbr_config;
  bbr_config.congestion_control = net::CongestionControl::kBbrLike;
  const Ehmm cubic = core::testing::small_ehmm();
  const Ehmm bbr(core::StateSpace(1.0, 3.0),
                 core::TransitionModel::tridiagonal(4),
                 core::EmissionModel(0.5, bbr_config), 5.0);
  const Ehmm wide(core::StateSpace(2.0, 6.0),
                  core::TransitionModel::tridiagonal(4),
                  core::EmissionModel(0.5), 5.0);
  EXPECT_NE(cubic.emission_table_id(), bbr.emission_table_id());
  EXPECT_NE(cubic.emission_table_id(), wide.emission_table_id());

  auto shared = std::make_shared<EstimatorCache>();
  math::Matrix reference, through_shared;
  for (const Ehmm* model : {&cubic, &bbr, &wide}) {
    EstimatorCache isolated;
    model->emission_means_into(obs, reference, isolated);
    model->emission_means_into(obs, through_shared, *shared);
    expect_matrix_eq(reference, through_shared);
  }
  // And again, now that the shared cache is fully warm with all three
  // models' rows interleaved.
  for (const Ehmm* model : {&cubic, &bbr, &wide}) {
    EstimatorCache isolated;
    model->emission_means_into(obs, reference, isolated);
    model->emission_means_into(obs, through_shared, *shared);
    expect_matrix_eq(reference, through_shared);
  }
}

TEST(EstimatorCache, MultiWindowPlainMeansSurviveTheCache) {
  core::StateSpace space(1.0, 3.0);
  const Ehmm multi(core::StateSpace(1.0, 3.0),
                   core::TransitionModel::tridiagonal(4),
                   core::EmissionModel(0.5, net::TcpConfig{},
                                       core::EmissionModel::Estimator::
                                           kMultiWindow),
                   5.0);
  // Long chunks (4 MB ≈ 16-32 s at these candidate rates) so the span
  // estimate exceeds one δ-window and the span-averaged candidate
  // actually replaces the plain one.
  std::vector<ChunkObservation> obs;
  for (int n = 0; n < 6; ++n) {
    obs.push_back(core::testing::warm_observation(5.0 * n, 2.0, 4e6));
  }

  EstimatorCache cache;
  math::Matrix means_cold, plain_cold, means_warm, plain_warm;
  multi.emission_means_into(obs, means_cold, cache, &plain_cold);
  multi.emission_means_into(obs, means_warm, cache, &plain_warm);
  expect_matrix_eq(means_cold, means_warm);
  expect_matrix_eq(plain_cold, plain_warm);

  // The span-averaged means and the plain means genuinely differ for
  // long chunks, so the entry really carries two rows.
  bool any_difference = false;
  for (std::size_t n = 0; n < means_cold.rows() && !any_difference; ++n) {
    for (std::size_t i = 0; i < means_cold.cols(); ++i) {
      if (means_cold(n, i) != plain_cold(n, i)) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(EstimatorCache, QuantizationCollapsesNearbyStates) {
  EstimatorCache::Config config;
  config.quantize_mantissa_bits = 12;
  EstimatorCache cache(config);
  EXPECT_TRUE(cache.quantizes());
  // Truncation keeps sign and rough magnitude, is idempotent, and
  // preserves non-finite / zero values.
  const double q = cache.quantize(123.456789);
  EXPECT_NEAR(q, 123.456789, 123.456789 * 1e-3);
  EXPECT_EQ(cache.quantize(q), q);
  EXPECT_EQ(cache.quantize(0.0), 0.0);

  const Ehmm ehmm = core::testing::small_ehmm();
  auto obs = session_obs(17, 20);
  math::Matrix first;
  ehmm.emission_means_into(obs, first, cache);
  const EstimatorCache::Stats cold = cache.stats();

  // Perturb every TCP field at a relative 1e-9 — far below the 12-bit
  // grid: the perturbed session maps onto the same entries (all hits)
  // and reproduces the identical matrix.
  auto perturbed = obs;
  for (ChunkObservation& o : perturbed) {
    o.tcp.cwnd_segments *= 1.0 + 1e-9;
    o.tcp.min_rtt_s *= 1.0 - 1e-9;
    o.size_bytes *= 1.0 + 1e-9;
  }
  math::Matrix second;
  ehmm.emission_means_into(perturbed, second, cache);
  const EstimatorCache::Stats warm = cache.stats();
  EXPECT_EQ(warm.insertions, cold.insertions);
  EXPECT_EQ(warm.hits - cold.hits, perturbed.size());
  expect_matrix_eq(first, second);
}

TEST(EstimatorCache, CapacityFlushKeepsResultsCorrect) {
  EstimatorCache::Config config;
  config.capacity = 8;
  config.shards = 2;
  EstimatorCache tiny(config);
  const Ehmm ehmm = core::testing::small_ehmm();
  const auto obs = session_obs(19, 60);

  math::Matrix bounded, reference;
  ehmm.emission_means_into(obs, bounded, tiny);
  EstimatorCache big;
  ehmm.emission_means_into(obs, reference, big);
  expect_matrix_eq(bounded, reference);
  const EstimatorCache::Stats stats = tiny.stats();
  EXPECT_LE(stats.entries, 8u);
  EXPECT_GT(stats.flushes, 0u);
}

TEST(EstimatorCache, EngineSharesOneCacheAcrossSessionsAndScratches) {
  const auto gtbw =
      trace::make_traces(trace::TraceFamily::kFccLike, 1, 23)[0];
  const sim::SessionLog log = core::testing::deployed_log(gtbw, 40);

  core::VeritasConfig with_cache;
  core::VeritasConfig no_cache;
  no_cache.estimator_cache_bytes = 0;
  const core::InferenceEngine cached(with_cache);
  const core::InferenceEngine uncached(no_cache);
  ASSERT_NE(cached.estimator_cache(), nullptr);
  EXPECT_EQ(uncached.estimator_cache(), nullptr);

  Ehmm::Scratch a, b;
  const core::VeritasResult first = cached.infer(log, a);
  const std::uint64_t hits_after_first =
      cached.estimator_cache()->stats().hits;
  // A different scratch still consults the engine cache: the second
  // inference's emission phase is all hits.
  const core::VeritasResult second = cached.infer(log, b);
  EXPECT_GT(cached.estimator_cache()->stats().hits, hits_after_first);
  EXPECT_EQ(a.estimator_cache.get(), cached.estimator_cache().get());
  EXPECT_EQ(b.estimator_cache.get(), cached.estimator_cache().get());

  // Cached, cache-disabled and repeat runs all agree bitwise.
  Ehmm::Scratch c;
  const core::VeritasResult reference = uncached.infer(log, c);
  EXPECT_EQ(first.log_likelihood, reference.log_likelihood);
  EXPECT_EQ(second.log_likelihood, reference.log_likelihood);
  ASSERT_EQ(first.map_states_mbps.size(), reference.map_states_mbps.size());
  for (std::size_t i = 0; i < reference.map_states_mbps.size(); ++i) {
    EXPECT_EQ(first.map_states_mbps[i], reference.map_states_mbps[i]);
    EXPECT_EQ(second.map_states_mbps[i], reference.map_states_mbps[i]);
  }
  expect_matrix_eq(first.posterior_marginals, reference.posterior_marginals);
}

TEST(EstimatorCache, DisabledEngineDetachesAPreviousEnginesCache) {
  // A worker-lane scratch hops between shards: after serving an engine
  // with a cache, a cache-disabled engine must not silently keep
  // computing through it (lane-history-dependent results, foreign
  // budget consumption). The attach is unconditional — null detaches.
  const auto gtbw =
      trace::make_traces(trace::TraceFamily::kFccLike, 1, 29)[0];
  const sim::SessionLog log = core::testing::deployed_log(gtbw, 30);

  core::VeritasConfig quantized;
  quantized.estimator_cache_quant_bits = 4;  // visibly lossy cache
  core::VeritasConfig off;
  off.estimator_cache_bytes = 0;
  const core::InferenceEngine first(quantized);
  const core::InferenceEngine second(off);

  Ehmm::Scratch lane;
  (void)first.infer(log, lane);
  ASSERT_EQ(lane.estimator_cache.get(), first.estimator_cache().get());

  const core::VeritasResult through_lane = second.infer(log, lane);
  EXPECT_NE(lane.estimator_cache.get(), first.estimator_cache().get());

  Ehmm::Scratch fresh;
  const core::VeritasResult reference = second.infer(log, fresh);
  EXPECT_EQ(through_lane.log_likelihood, reference.log_likelihood);
  expect_matrix_eq(through_lane.posterior_marginals,
                   reference.posterior_marginals);
}

TEST(EstimatorCache, BaumWelchSharedCacheMatchesPerLaneTraining) {
  // Training with the run-wide shared cache (the production path) must
  // be bit-identical at every thread count — the cache only changes
  // when f runs, never what it returns.
  std::vector<std::vector<ChunkObservation>> sessions;
  for (std::uint64_t s = 0; s < 4; ++s) {
    sessions.push_back(session_obs(100 + s, 24));
  }
  const Ehmm initial = core::testing::small_ehmm();
  core::BaumWelchConfig config;
  config.max_iterations = 3;
  config.update_sigma = true;

  config.num_threads = 1;
  const core::BaumWelchResult serial =
      core::baum_welch_train(initial, sessions, config);
  config.num_threads = 4;
  const core::BaumWelchResult parallel =
      core::baum_welch_train(initial, sessions, config);

  ASSERT_EQ(serial.log_likelihoods.size(), parallel.log_likelihoods.size());
  for (std::size_t i = 0; i < serial.log_likelihoods.size(); ++i) {
    EXPECT_EQ(serial.log_likelihoods[i], parallel.log_likelihoods[i]);
  }
  EXPECT_EQ(serial.sigma_mbps, parallel.sigma_mbps);
  const math::Matrix& a = serial.transition.matrix();
  const math::Matrix& b = parallel.transition.matrix();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j));
    }
  }
}

}  // namespace
