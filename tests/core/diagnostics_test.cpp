#include "core/diagnostics.hpp"

#include <gtest/gtest.h>

#include "core/test_helpers.hpp"
#include "trace/trace_generator.hpp"
#include "util/expects.hpp"

namespace veritas::core {
namespace {

TEST(Diagnostics, PerChunkFieldsPopulated) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 60);
  const Veritas veritas;
  const InferenceDiagnostics d = diagnose(veritas, log);
  ASSERT_EQ(d.chunks.size(), log.size());
  for (const ChunkDiagnostic& c : d.chunks) {
    EXPECT_GE(c.posterior_entropy_nats, 0.0);
    EXPECT_LE(c.posterior_entropy_nats, d.max_entropy_nats + 1e-9);
    EXPECT_GE(c.posterior_std_mbps, 0.0);
    EXPECT_GT(c.observed_throughput_mbps, 0.0);
  }
  EXPECT_GT(d.fraction_informative, 0.0);
}

TEST(Diagnostics, LargeChunksAreInformative) {
  // Top-quality chunks (1 MB) far exceed the BDP at 4 Mbps/80ms (~40 KB).
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 80);
  const Veritas veritas;
  const InferenceDiagnostics d = diagnose(veritas, log);
  for (const ChunkDiagnostic& c : d.chunks) {
    if (log.chunks[c.chunk].size_bytes > 500000.0) {
      EXPECT_TRUE(c.informative) << "chunk " << c.chunk;
    }
  }
}

TEST(Diagnostics, InformativeChunksHaveLowerEntropy) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 23);
  const sim::SessionLog log = testing::deployed_log(traces[0], 150);
  const Veritas veritas;
  const InferenceDiagnostics d = diagnose(veritas, log);
  double informative_entropy = 0.0, uninformative_entropy = 0.0;
  std::size_t ni = 0, nu = 0;
  for (const ChunkDiagnostic& c : d.chunks) {
    if (c.informative) {
      informative_entropy += c.posterior_entropy_nats;
      ++ni;
    } else {
      uninformative_entropy += c.posterior_entropy_nats;
      ++nu;
    }
  }
  if (ni > 5 && nu > 5) {
    EXPECT_LT(informative_entropy / double(ni),
              uninformative_entropy / double(nu) + 0.2);
  }
}

TEST(Diagnostics, ConstantTraceHasFewUncertainSpans) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 100);
  const Veritas veritas;
  const InferenceDiagnostics d = diagnose(veritas, log, 0.8);
  EXPECT_LE(d.uncertain_spans.size(), 2u);
}

TEST(Diagnostics, SpansAreOrderedAndWithinSession) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 29);
  const sim::SessionLog log = testing::deployed_log(traces[0], 120);
  const Veritas veritas;
  const InferenceDiagnostics d = diagnose(veritas, log, 0.3);
  double prev_end = -1.0;
  for (const UncertainSpan& span : d.uncertain_spans) {
    EXPECT_LT(span.begin_s, span.end_s);
    EXPECT_GT(span.begin_s, prev_end);
    EXPECT_LE(span.end_s, log.chunks.back().end_s + 1e-9);
    EXPECT_GE(span.mean_entropy_nats, 0.0);
    prev_end = span.end_s;
  }
}

TEST(Diagnostics, SummaryMentionsKeyNumbers) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 40);
  const Veritas veritas;
  const std::string text = diagnose(veritas, log).summary();
  EXPECT_NE(text.find("chunks"), std::string::npos);
  EXPECT_NE(text.find("entropy"), std::string::npos);
}

TEST(Diagnostics, RejectsBadArguments) {
  const Veritas veritas;
  sim::SessionLog empty;
  EXPECT_THROW(diagnose(veritas, empty), veritas::ContractViolation);
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 10);
  EXPECT_THROW(diagnose(veritas, log, 0.0), veritas::ContractViolation);
  EXPECT_THROW(diagnose(veritas, log, 1.0), veritas::ContractViolation);
}

}  // namespace
}  // namespace veritas::core
