#include <gtest/gtest.h>

#include <cmath>

#include "core/test_helpers.hpp"
#include "core/veritas.hpp"
#include "trace/trace_generator.hpp"
#include "util/expects.hpp"

namespace veritas::core {
namespace {

TEST(NextChunkDistribution, ProbabilitiesSumToOne) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 60);
  const Veritas veritas;
  const std::size_t n = 40;
  const auto dist = veritas.predict_next_distribution(
      log.prefix(n), log.chunks[n].start_s, log.chunks[n].tcp_at_start,
      log.chunks[n].size_bytes);
  double sum = 0.0;
  for (const double p : dist.probabilities) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(dist.gtbw_mbps.size(), dist.probabilities.size());
  EXPECT_EQ(dist.gtbw_mbps.size(), dist.download_time_s.size());
}

TEST(NextChunkDistribution, ConcentratesOnTruthForConstantBandwidth) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 100);
  const Veritas veritas;
  const std::size_t n = 80;
  const auto dist = veritas.predict_next_distribution(
      log.prefix(n), log.chunks[n].start_s, log.chunks[n].tcp_at_start,
      log.chunks[n].size_bytes);
  // Most posterior mass within +-1 Mbps of the true 4.0.
  double near_truth = 0.0;
  for (std::size_t i = 0; i < dist.gtbw_mbps.size(); ++i) {
    if (std::abs(dist.gtbw_mbps[i] - 4.0) <= 1.0) {
      near_truth += dist.probabilities[i];
    }
  }
  EXPECT_GT(near_truth, 0.8);
}

TEST(NextChunkDistribution, QuantilesAreMonotone) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 5);
  const sim::SessionLog log = testing::deployed_log(traces[0], 80);
  const Veritas veritas;
  const std::size_t n = 60;
  const auto dist = veritas.predict_next_distribution(
      log.prefix(n), log.chunks[n].start_s, log.chunks[n].tcp_at_start,
      log.chunks[n].size_bytes);
  double prev = dist.time_quantile_s(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = dist.time_quantile_s(q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(NextChunkDistribution, MeanBetweenExtremeQuantiles) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 7);
  const sim::SessionLog log = testing::deployed_log(traces[0], 80);
  const Veritas veritas;
  const std::size_t n = 50;
  const auto dist = veritas.predict_next_distribution(
      log.prefix(n), log.chunks[n].start_s, log.chunks[n].tcp_at_start,
      log.chunks[n].size_bytes);
  const double mean = dist.mean_time_s();
  EXPECT_GE(mean, dist.time_quantile_s(0.0) - 1e-9);
  EXPECT_TRUE(std::isfinite(mean));
}

TEST(NextChunkDistribution, IntervalCoversTruthMostOfTheTime) {
  // Calibration check: the [q05, q95] predictive interval should cover
  // the realized download time for the large majority of chunks.
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 2, 11);
  const Veritas veritas;
  int covered = 0, total = 0;
  for (const auto& gtbw : traces) {
    const sim::SessionLog log = testing::deployed_log(gtbw, 100);
    for (std::size_t n = 20; n < log.size(); n += 10) {
      const auto dist = veritas.predict_next_distribution(
          log.prefix(n), log.chunks[n].start_s, log.chunks[n].tcp_at_start,
          log.chunks[n].size_bytes);
      const double truth = log.chunks[n].download_time_s();
      // Allow interval slack for the estimator's own residual error.
      const double lo = dist.time_quantile_s(0.05) * 0.7 - 0.1;
      const double hi = dist.time_quantile_s(0.95) * 1.3 + 0.1;
      covered += (truth >= lo && truth <= hi);
      ++total;
    }
  }
  EXPECT_GE(static_cast<double>(covered) / total, 0.75);
}

TEST(NextChunkDistribution, WiderForSmallChunks) {
  // Small chunks are uninformative (RTT-bound): the next-chunk GTBW
  // posterior entropy should not collapse; download-time spread for a
  // LARGE probe chunk reflects that uncertainty.
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 13);
  const sim::SessionLog log = testing::deployed_log(traces[0], 100);
  const Veritas veritas;
  const std::size_t n = 60;
  const double probe_size = 2e6;  // big probe: sensitive to GTBW
  const auto dist = veritas.predict_next_distribution(
      log.prefix(n), log.chunks[n].start_s, log.chunks[n].tcp_at_start,
      probe_size);
  EXPECT_GT(dist.time_quantile_s(0.95), dist.time_quantile_s(0.05));
}

TEST(NextChunkDistribution, RejectsBadInput) {
  const Veritas veritas;
  sim::SessionLog empty;
  net::TcpState w;
  EXPECT_THROW(veritas.predict_next_distribution(empty, 0.0, w, 1000.0),
               veritas::ContractViolation);
}

}  // namespace
}  // namespace veritas::core
