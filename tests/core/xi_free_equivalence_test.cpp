// Golden equivalence tests for the xi-free refactor: Baum-Welch trained
// parameters and posterior sampler draws must be bit-identical to the
// seed's xi-materializing pathway (replayed here through the
// pair_posterior compatibility accessor), at 1 and at 4 E-step threads —
// and ForwardBackwardResult must no longer carry per-step k×k pair
// matrices at all.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <type_traits>
#include <vector>

#include "core/baum_welch.hpp"
#include "core/test_helpers.hpp"
#include "trace/trace_generator.hpp"
#include "util/rng.hpp"

namespace veritas::core {
namespace {

using testing::deployed_log;
using testing::small_ehmm;
using testing::warm_observation;

// ---- structural guarantee -------------------------------------------------

template <typename T, typename = void>
struct HasXiMember : std::false_type {};
template <typename T>
struct HasXiMember<T, std::void_t<decltype(std::declval<T>().xi)>>
    : std::true_type {};

static_assert(!HasXiMember<Ehmm::ForwardBackwardResult>::value,
              "ForwardBackwardResult must not materialize per-step k x k "
              "xi matrices; the sampler and Baum-Welch read alpha/beta/"
              "emission rows on the fly");

TEST(XiFree, ForwardBackwardAllocatesOnlyScalarsPerStep) {
  const Ehmm ehmm = small_ehmm();
  std::vector<ChunkObservation> obs;
  for (int n = 0; n < 12; ++n) {
    obs.push_back(warm_observation(5.0 * n, 1.5 + 0.1 * (n % 4)));
  }
  Ehmm::Scratch scratch;
  const auto fb = ehmm.forward_backward(obs, scratch);
  // One scalar normalizer per adjacent pair is all that is kept.
  EXPECT_EQ(fb.pair_totals.size(), obs.size() - 1);
  // And the pair posterior is still fully recoverable from it.
  for (std::size_t n = 0; n + 1 < obs.size(); ++n) {
    const math::Matrix pair = ehmm.pair_posterior(fb, scratch, n);
    double sum = 0.0;
    for (std::size_t i = 0; i < pair.rows(); ++i) {
      for (std::size_t j = 0; j < pair.cols(); ++j) sum += pair(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "pair " << n;
  }
}

// ---- Baum-Welch golden reference ------------------------------------------

// The seed's E-step statistics, computed from fully materialized pair
// posteriors (via the compatibility accessor) with per-session partials
// merged in session order — the shape the xi-free production path must
// reproduce bit for bit.
BaumWelchResult reference_train(
    const Ehmm& initial,
    const std::vector<std::vector<ChunkObservation>>& sessions,
    const BaumWelchConfig& config) {
  const std::size_t k = initial.space().size();
  math::Matrix a = initial.transition().matrix();
  std::vector<double> u(initial.transition().initial().begin(),
                        initial.transition().initial().end());
  double sigma = initial.emission().sigma_mbps();
  BaumWelchResult result{TransitionModel(a, u), sigma, {}, 0};

  double previous_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    const Ehmm model(initial.space(), TransitionModel(a, u),
                     EmissionModel(sigma, initial.emission().tcp_config(),
                                   initial.emission().estimator()),
                     initial.delta_s());

    struct Partial {
      math::Matrix counts;
      std::vector<double> initial;
      double residual_sq = 0.0;
      double residual_weight = 0.0;
      double ll = 0.0;
    };
    std::vector<Partial> partials(sessions.size());
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      const auto& obs = sessions[s];
      Ehmm::Scratch scratch;
      const Ehmm::ForwardBackwardResult fb =
          model.forward_backward(obs, scratch);
      const std::vector<std::size_t> deltas = model.window_deltas(obs);
      Partial& p = partials[s];
      p.counts = math::Matrix(k, k, 0.0);
      p.initial.assign(k, 0.0);
      p.ll = fb.log_likelihood;
      for (std::size_t i = 0; i < k; ++i) p.initial[i] += fb.gamma(0, i);
      for (std::size_t n = 0; n + 1 < obs.size(); ++n) {
        if (deltas[n + 1] != 1) continue;
        const math::Matrix xi = model.pair_posterior(fb, scratch, n);
        for (std::size_t i = 0; i < k; ++i) {
          for (std::size_t j = 0; j < k; ++j) p.counts(i, j) += xi(i, j);
        }
      }
      if (config.update_sigma) {
        for (std::size_t n = 0; n < obs.size(); ++n) {
          for (std::size_t i = 0; i < k; ++i) {
            const double mean = model.emission().mean_throughput_mbps(
                model.space().value(i), obs[n]);
            const double r = obs[n].throughput_mbps - mean;
            p.residual_sq += fb.gamma(n, i) * r * r;
            p.residual_weight += fb.gamma(n, i);
          }
        }
      }
    }

    math::Matrix transition_counts(k, k, config.smoothing);
    std::vector<double> initial_counts(k, config.smoothing);
    double residual_sq = 0.0, residual_weight = 0.0, total_ll = 0.0;
    for (const Partial& p : partials) {
      total_ll += p.ll;
      for (std::size_t i = 0; i < k; ++i) {
        initial_counts[i] += p.initial[i];
        for (std::size_t j = 0; j < k; ++j) {
          transition_counts(i, j) += p.counts(i, j);
        }
      }
      residual_sq += p.residual_sq;
      residual_weight += p.residual_weight;
    }

    result.log_likelihoods.push_back(total_ll);
    result.iterations = iter + 1;
    if (config.update_transition) {
      for (std::size_t i = 0; i < k; ++i) {
        double row_sum = 0.0;
        for (std::size_t j = 0; j < k; ++j) row_sum += transition_counts(i, j);
        for (std::size_t j = 0; j < k; ++j) {
          a(i, j) = transition_counts(i, j) / row_sum;
        }
      }
    }
    if (config.update_initial) {
      double sum = 0.0;
      for (const double c : initial_counts) sum += c;
      for (std::size_t i = 0; i < k; ++i) u[i] = initial_counts[i] / sum;
    }
    if (config.update_sigma && residual_weight > 0.0) {
      sigma = std::max(config.min_sigma_mbps,
                       std::sqrt(residual_sq / residual_weight));
    }
    result.transition = TransitionModel(a, u);
    result.sigma_mbps = sigma;
    if (std::isfinite(previous_ll) &&
        std::abs(total_ll - previous_ll) <=
            config.tolerance * (std::abs(previous_ll) + 1.0)) {
      break;
    }
    previous_ll = total_ll;
  }
  return result;
}

void expect_bit_identical(const BaumWelchResult& got,
                          const BaumWelchResult& want,
                          const std::string& label) {
  EXPECT_EQ(got.iterations, want.iterations) << label;
  ASSERT_EQ(got.log_likelihoods.size(), want.log_likelihoods.size()) << label;
  for (std::size_t i = 0; i < got.log_likelihoods.size(); ++i) {
    EXPECT_EQ(got.log_likelihoods[i], want.log_likelihoods[i])
        << label << " iteration " << i;
  }
  EXPECT_EQ(got.sigma_mbps, want.sigma_mbps) << label;
  EXPECT_EQ(got.transition.matrix().max_abs_diff(want.transition.matrix()),
            0.0)
      << label;
  ASSERT_EQ(got.transition.initial().size(), want.transition.initial().size())
      << label;
  for (std::size_t i = 0; i < got.transition.initial().size(); ++i) {
    EXPECT_EQ(got.transition.initial()[i], want.transition.initial()[i])
        << label << " u[" << i << "]";
  }
}

// Synthetic Δ=1 sessions (chunks δ apart) plus simulator sessions with
// the real Δ mix (0, 1 and multi-window hops).
std::vector<std::vector<ChunkObservation>> training_sessions() {
  std::vector<std::vector<ChunkObservation>> sessions;
  util::Rng rng(99);
  for (std::size_t s = 0; s < 3; ++s) {
    std::vector<ChunkObservation> obs;
    for (std::size_t n = 0; n < 40; ++n) {
      const double y = std::max(0.05, rng.normal(1.5 + double(s % 3) * 0.5,
                                                 0.4));
      obs.push_back(warm_observation(double(n) * 5.0, y, 8e6));
    }
    sessions.push_back(std::move(obs));
  }
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 2, 31);
  for (const auto& t : traces) {
    sessions.push_back(observations_from_log(deployed_log(t, 40)));
  }
  return sessions;
}

TEST(XiFree, BaumWelchMatchesXiReferenceAtOneAndFourThreads) {
  const auto sessions = training_sessions();
  const Ehmm init = small_ehmm(0.5, 0.6);
  for (const bool update_sigma : {false, true}) {
    BaumWelchConfig cfg;
    cfg.max_iterations = 4;
    cfg.tolerance = 0.0;  // run every iteration
    cfg.update_sigma = update_sigma;
    const BaumWelchResult want = reference_train(init, sessions, cfg);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      cfg.num_threads = threads;
      const BaumWelchResult got = baum_welch_train(init, sessions, cfg);
      expect_bit_identical(got, want,
                           "threads=" + std::to_string(threads) +
                               " sigma=" + std::to_string(update_sigma));
      // The emission-mean cache ablation must not change results either.
      cfg.reuse_emission_means = false;
      const BaumWelchResult uncached = baum_welch_train(init, sessions, cfg);
      cfg.reuse_emission_means = true;
      expect_bit_identical(uncached, want,
                           "uncached threads=" + std::to_string(threads));
    }
  }
}

TEST(XiFree, BaumWelchThreadCountInvariantUnderMultiWindow) {
  // kMultiWindow couples the emission means to A, exercising the
  // recompute-every-iteration path; thread counts must still agree.
  const auto sessions = training_sessions();
  StateSpace space(1.0, 3.0);
  TransitionModel transition = TransitionModel::tridiagonal(space.size(), 0.7);
  EmissionModel emission(0.5, net::TcpConfig{},
                         EmissionModel::Estimator::kMultiWindow);
  const Ehmm init(std::move(space), std::move(transition),
                  std::move(emission), 5.0);
  BaumWelchConfig cfg;
  cfg.max_iterations = 3;
  cfg.tolerance = 0.0;
  cfg.update_sigma = true;
  cfg.num_threads = 1;
  const BaumWelchResult serial = baum_welch_train(init, sessions, cfg);
  cfg.num_threads = 4;
  const BaumWelchResult parallel = baum_welch_train(init, sessions, cfg);
  expect_bit_identical(parallel, serial, "multi-window 4 threads");
}

}  // namespace
}  // namespace veritas::core
