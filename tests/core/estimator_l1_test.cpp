// The per-lane lock-free L1 front-cache over the shared (W, S)
// estimator memo (PR 7 tentpole): direct table semantics (find/put,
// owner/epoch re-keying, displacement), clear()-driven epoch
// invalidation, capacity-flush survival through the shared_ptr pins,
// lane hopping between engines, and end-to-end bit-identity of the
// L1-hit / L0-hit / miss branches of the zero-copy emission rows path.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/estimator_cache.hpp"
#include "core/inference_engine.hpp"
#include "core/test_helpers.hpp"
#include "trace/trace_generator.hpp"

namespace {

using namespace veritas;
using core::ChunkObservation;
using core::Ehmm;
using core::EstimatorCache;

std::vector<ChunkObservation> session_obs(std::uint64_t seed,
                                          std::size_t chunks = 40) {
  const auto gtbw =
      trace::make_traces(trace::TraceFamily::kFccLike, 1, seed)[0];
  return core::observations_from_log(
      core::testing::deployed_log(gtbw, chunks));
}

void expect_matrix_eq(const math::Matrix& a, const math::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t n = 0; n < a.rows(); ++n) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      EXPECT_EQ(a(n, i), b(n, i)) << "n=" << n << " i=" << i;
    }
  }
}

EstimatorCache::Key key_for(double size_bytes, std::uint64_t table_id = 1) {
  net::TcpState w;
  w.cwnd_segments = 10.0;
  return EstimatorCache::key_of(w, size_bytes, table_id);
}

std::shared_ptr<const EstimatorCache::Entry> entry_with(double v) {
  auto entry = std::make_shared<EstimatorCache::Entry>();
  entry->mean = {v, v + 1.0, v + 2.0};
  return entry;
}

TEST(EstimatorL1, FindPutRoundTripAndStats) {
  EstimatorCache cache;
  EstimatorCache::L1 l1;
  l1.sync(cache);

  const EstimatorCache::Key key = key_for(1000.0);
  EXPECT_EQ(l1.find(key), nullptr);
  EXPECT_EQ(l1.misses(), 1u);

  l1.put(key, entry_with(2.0));
  const std::shared_ptr<const EstimatorCache::Entry>* hit = l1.find(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)->mean[0], 2.0);
  EXPECT_EQ(l1.hits(), 1u);

  // Same-key put overwrites in place rather than burning a second slot.
  l1.put(key, entry_with(9.0));
  hit = l1.find(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)->mean[0], 9.0);

  // Distinct keys coexist.
  const EstimatorCache::Key other = key_for(2000.0);
  l1.put(other, entry_with(5.0));
  ASSERT_NE(l1.find(other), nullptr);
  ASSERT_NE(l1.find(key), nullptr);
}

TEST(EstimatorL1, SyncDropsSlotsWhenTheOwnerChanges) {
  EstimatorCache a, b;
  EstimatorCache::L1 l1;
  const EstimatorCache::Key key = key_for(1000.0);

  l1.sync(a);
  l1.put(key, entry_with(1.0));
  l1.sync(a);  // same owner, same epoch: no-op
  ASSERT_NE(l1.find(key), nullptr);

  l1.sync(b);  // lane hop: every slot dropped
  EXPECT_EQ(l1.find(key), nullptr);

  l1.sync(a);  // hopping back does not resurrect anything
  EXPECT_EQ(l1.find(key), nullptr);
}

TEST(EstimatorL1, ClearBumpsTheEpochAndInvalidatesSlots) {
  EstimatorCache cache;
  EXPECT_EQ(cache.epoch(), 0u);

  EstimatorCache::L1 l1;
  l1.sync(cache);
  const EstimatorCache::Key key = key_for(1000.0);
  l1.put(key, entry_with(3.0));
  ASSERT_NE(l1.find(key), nullptr);

  cache.clear();
  EXPECT_EQ(cache.epoch(), 1u);
  // The stale pin survives until the next sync()...
  l1.sync(cache);
  // ...at which point the epoch mismatch drops it.
  EXPECT_EQ(l1.find(key), nullptr);
}

TEST(EstimatorL1, CapacityFlushDoesNotBumpTheEpochOrDropPins) {
  // Entries are pure functions of their key, so a shard flush must not
  // invalidate L1 pins: the pinned row can go unreachable in the shared
  // memo but never stale. The L1 keeps serving it bit-for-bit.
  EstimatorCache::Config config;
  config.capacity = 8;
  config.shards = 2;
  EstimatorCache tiny(config);

  EstimatorCache::L1 l1;
  l1.sync(tiny);
  const EstimatorCache::Key pinned_key = key_for(500.0);
  const auto pinned = entry_with(7.0);
  tiny.insert(pinned_key, pinned);
  l1.put(pinned_key, pinned);

  // Blow well past capacity so every shard flushes at least once.
  for (int i = 0; i < 64; ++i) {
    tiny.insert(key_for(1000.0 + i), entry_with(double(i)));
  }
  EXPECT_GT(tiny.stats().flushes, 0u);
  EXPECT_EQ(tiny.epoch(), 0u);

  l1.sync(tiny);  // no-op: same owner, same epoch
  const std::shared_ptr<const EstimatorCache::Entry>* hit =
      l1.find(pinned_key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)->mean[0], 7.0);
  EXPECT_EQ((*hit)->mean[2], 9.0);
}

TEST(EstimatorL1, WarmScratchRepeatInferBypassesTheSharedMemo) {
  // Second inference through the same scratch: every emission tuple is
  // already pinned in the lane's L1, so the shared memo sees zero new
  // traffic (no hits, no misses, no insertions) and the results are
  // bit-identical.
  const auto gtbw =
      trace::make_traces(trace::TraceFamily::kFccLike, 1, 37)[0];
  const sim::SessionLog log = core::testing::deployed_log(gtbw, 40);

  const core::InferenceEngine engine{core::VeritasConfig{}};
  ASSERT_NE(engine.estimator_cache(), nullptr);

  Ehmm::Scratch lane;
  const core::VeritasResult first = engine.infer(log, lane);
  const EstimatorCache::Stats after_first = engine.estimator_cache()->stats();
  const std::uint64_t l1_hits_after_first = lane.estimator_l1.hits();

  const core::VeritasResult second = engine.infer(log, lane);
  const EstimatorCache::Stats after_second =
      engine.estimator_cache()->stats();
  EXPECT_EQ(after_second.hits, after_first.hits);
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_EQ(after_second.insertions, after_first.insertions);
  EXPECT_GT(lane.estimator_l1.hits(), l1_hits_after_first);

  EXPECT_EQ(first.log_likelihood, second.log_likelihood);
  ASSERT_EQ(first.map_states_mbps.size(), second.map_states_mbps.size());
  for (std::size_t i = 0; i < first.map_states_mbps.size(); ++i) {
    EXPECT_EQ(first.map_states_mbps[i], second.map_states_mbps[i]);
  }
  expect_matrix_eq(first.posterior_marginals, second.posterior_marginals);
}

TEST(EstimatorL1, AllThreeRowBranchesAreBitIdentical) {
  // The rows path has three ways to serve a tuple — L1 hit, shared-memo
  // hit (cold L1), and a genuine miss/compute — and all three must
  // produce the same bits as a cache-disabled engine. Lane A's first
  // infer exercises miss + within-session L1 hits; lane B's infer the
  // L0-hit branch (warm memo, cold L1); lane A's repeat the pure-L1
  // branch.
  const auto gtbw =
      trace::make_traces(trace::TraceFamily::kFccLike, 1, 41)[0];
  const sim::SessionLog log = core::testing::deployed_log(gtbw, 40);

  core::VeritasConfig off;
  off.estimator_cache_bytes = 0;
  const core::InferenceEngine uncached(off);
  Ehmm::Scratch plain;
  const core::VeritasResult reference = uncached.infer(log, plain);

  const core::InferenceEngine cached{core::VeritasConfig{}};
  Ehmm::Scratch a, b;
  const core::VeritasResult miss_branch = cached.infer(log, a);
  const core::VeritasResult l0_branch = cached.infer(log, b);
  const core::VeritasResult l1_branch = cached.infer(log, a);

  for (const core::VeritasResult* r :
       {&miss_branch, &l0_branch, &l1_branch}) {
    EXPECT_EQ(r->log_likelihood, reference.log_likelihood);
    ASSERT_EQ(r->map_states_mbps.size(), reference.map_states_mbps.size());
    for (std::size_t i = 0; i < reference.map_states_mbps.size(); ++i) {
      EXPECT_EQ(r->map_states_mbps[i], reference.map_states_mbps[i]);
    }
    expect_matrix_eq(r->posterior_marginals, reference.posterior_marginals);
  }
}

TEST(EstimatorL1, ClearMidLaneRecomputesIdentically) {
  // clear() between two inferences through one scratch: the L1 re-syncs
  // against the new epoch, the memo re-warms from scratch (insertions
  // grow again), and the recomputed session is bit-identical.
  const auto gtbw =
      trace::make_traces(trace::TraceFamily::kFccLike, 1, 43)[0];
  const sim::SessionLog log = core::testing::deployed_log(gtbw, 30);

  const core::InferenceEngine engine{core::VeritasConfig{}};
  Ehmm::Scratch lane;
  const core::VeritasResult before = engine.infer(log, lane);
  const std::uint64_t insertions_before =
      engine.estimator_cache()->stats().insertions;

  engine.estimator_cache()->clear();
  const core::VeritasResult after = engine.infer(log, lane);
  EXPECT_GT(engine.estimator_cache()->stats().insertions, insertions_before);

  EXPECT_EQ(before.log_likelihood, after.log_likelihood);
  expect_matrix_eq(before.posterior_marginals, after.posterior_marginals);
}

TEST(EstimatorL1, LaneHoppingBetweenCachedEnginesStaysCorrect) {
  // One scratch serving two engines with distinct caches (and distinct
  // candidate tables): the L1 re-keys on every hop, so neither engine
  // ever observes the other's rows. Each result matches a fresh-scratch
  // reference bitwise.
  const auto gtbw =
      trace::make_traces(trace::TraceFamily::kFccLike, 1, 47)[0];
  const sim::SessionLog log = core::testing::deployed_log(gtbw, 30);

  core::VeritasConfig narrow;
  narrow.max_mbps = 8.0;
  core::VeritasConfig wide;
  wide.max_mbps = 12.0;
  const core::InferenceEngine first(narrow);
  const core::InferenceEngine second(wide);

  Ehmm::Scratch lane;
  for (int hop = 0; hop < 2; ++hop) {
    const core::VeritasResult via_first = first.infer(log, lane);
    const core::VeritasResult via_second = second.infer(log, lane);

    Ehmm::Scratch fresh_a, fresh_b;
    const core::VeritasResult ref_first = first.infer(log, fresh_a);
    const core::VeritasResult ref_second = second.infer(log, fresh_b);
    EXPECT_EQ(via_first.log_likelihood, ref_first.log_likelihood);
    EXPECT_EQ(via_second.log_likelihood, ref_second.log_likelihood);
    expect_matrix_eq(via_first.posterior_marginals,
                     ref_first.posterior_marginals);
    expect_matrix_eq(via_second.posterior_marginals,
                     ref_second.posterior_marginals);
  }
}

// Chaos over the two-level cache: worker lanes replay sessions through
// one under-provisioned shared memo while a mutator thread interleaves
// clear()s (epoch bumps) and junk insertions (capacity flushes). Every
// lane must keep producing bit-identical results throughout — the L1
// pins keep served rows alive across flushes, and the epoch re-sync
// keeps them coherent across clears. Run under TSan in CI.
TEST(EstimatorL1Chaos, LanesStayBitIdenticalUnderClearsAndFlushes) {
  const Ehmm ehmm = core::testing::small_ehmm();
  std::vector<std::vector<ChunkObservation>> sessions;
  for (std::uint64_t s = 0; s < 3; ++s) {
    sessions.push_back(session_obs(60 + s, 24));
  }

  // Bitwise reference per session through a private, ample cache.
  std::vector<double> expected_ll;
  std::vector<math::Matrix> expected_gamma;
  for (const auto& obs : sessions) {
    Ehmm::Scratch scratch;
    const Ehmm::InferencePass pass = ehmm.infer_fused(obs, scratch);
    expected_ll.push_back(pass.forward_backward.log_likelihood);
    expected_gamma.push_back(pass.forward_backward.gamma);
  }

  EstimatorCache::Config config;
  config.capacity = 64;
  config.shards = 2;
  auto shared = std::make_shared<EstimatorCache>(config);

  constexpr int kRounds = 30;
  std::atomic<bool> stop{false};
  std::vector<double> worst(4, 1.0);
  std::vector<std::thread> lanes;
  for (std::size_t t = 0; t < worst.size(); ++t) {
    lanes.emplace_back([&, t] {
      Ehmm::Scratch scratch;
      scratch.estimator_cache = shared;
      double local = 0.0;
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t s = (t + round) % sessions.size();
        const Ehmm::InferencePass pass =
            ehmm.infer_fused(sessions[s], scratch);
        if (pass.forward_backward.log_likelihood != expected_ll[s]) {
          local = std::max(local, 1.0);
        }
        local = std::max(
            local, pass.forward_backward.gamma.max_abs_diff(
                       expected_gamma[s]));
      }
      worst[t] = local;
    });
  }
  std::thread mutator([&] {
    std::uint64_t junk = 0;
    // do-while: at least one clear + churn cycle even if this thread is
    // scheduled only after the lanes already drained (single-core CI).
    do {
      shared->clear();
      // Junk rows under a foreign table id: churns shard occupancy (and
      // with it capacity flushes) without ever being readable by the
      // model above.
      for (int i = 0; i < 48; ++i) {
        shared->insert(key_for(double(++junk), /*table_id=*/~0ull),
                       entry_with(double(junk)));
      }
      std::this_thread::yield();
    } while (!stop.load(std::memory_order_relaxed));
  });
  for (auto& lane : lanes) lane.join();
  stop.store(true, std::memory_order_relaxed);
  mutator.join();

  for (const double w : worst) EXPECT_EQ(w, 0.0);
  EXPECT_GT(shared->epoch(), 0u);
}

}  // namespace
