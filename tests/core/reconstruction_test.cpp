#include "core/reconstruction.hpp"

#include <gtest/gtest.h>

#include "core/test_helpers.hpp"
#include "util/expects.hpp"

namespace veritas::core {
namespace {

using testing::warm_observation;

const StateSpace kSpace(1.0, 5.0);
constexpr double kDelta = 5.0;

TEST(Reconstruction, SingleChunkFillsWholeTrace) {
  const std::vector<ChunkObservation> obs{warm_observation(12.0, 2.0)};
  const std::vector<std::size_t> states{3};
  const auto trace =
      states_to_trace(kSpace, states, obs, kDelta, 50.0);
  EXPECT_EQ(trace.windows(), 10u);
  for (double t = 0.0; t < 50.0; t += 2.5) {
    EXPECT_DOUBLE_EQ(trace.at(t), 3.0);
  }
}

TEST(Reconstruction, ChunkStartsMapToWindows) {
  // Chunks at 2 s (window 0) and 17 s (window 3).
  const std::vector<ChunkObservation> obs{warm_observation(2.0, 1.0),
                                          warm_observation(17.0, 4.0)};
  const std::vector<std::size_t> states{1, 4};
  const auto trace = states_to_trace(kSpace, states, obs, kDelta, 25.0,
                                     Interpolation::kHold);
  EXPECT_DOUBLE_EQ(trace.at(2.0), 1.0);   // window 0
  EXPECT_DOUBLE_EQ(trace.at(7.0), 1.0);   // hold
  EXPECT_DOUBLE_EQ(trace.at(12.0), 1.0);  // hold
  EXPECT_DOUBLE_EQ(trace.at(17.0), 4.0);  // window 3
  EXPECT_DOUBLE_EQ(trace.at(24.0), 4.0);  // tail hold
}

TEST(Reconstruction, LinearInterpolationBetweenWindows) {
  const std::vector<ChunkObservation> obs{warm_observation(0.0, 1.0),
                                          warm_observation(15.0, 4.0)};
  const std::vector<std::size_t> states{1, 4};
  const auto trace = states_to_trace(kSpace, states, obs, kDelta, 20.0,
                                     Interpolation::kLinear);
  EXPECT_DOUBLE_EQ(trace.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(trace.at(5.0), 2.0);
  EXPECT_DOUBLE_EQ(trace.at(10.0), 3.0);
  EXPECT_DOUBLE_EQ(trace.at(15.0), 4.0);
}

TEST(Reconstruction, LeadingWindowsFilledWithFirstValue) {
  const std::vector<ChunkObservation> obs{warm_observation(22.0, 2.0)};
  const std::vector<std::size_t> states{2};
  const auto trace = states_to_trace(kSpace, states, obs, kDelta, 30.0);
  EXPECT_DOUBLE_EQ(trace.at(0.0), 2.0);
  EXPECT_DOUBLE_EQ(trace.at(10.0), 2.0);
}

TEST(Reconstruction, LastChunkInWindowWins) {
  // Two chunks in window 1 (5-10 s): the later chunk's state is used.
  const std::vector<ChunkObservation> obs{warm_observation(6.0, 1.0),
                                          warm_observation(8.0, 3.0)};
  const std::vector<std::size_t> states{1, 3};
  const auto trace = states_to_trace(kSpace, states, obs, kDelta, 15.0);
  EXPECT_DOUBLE_EQ(trace.at(7.0), 3.0);
}

TEST(Reconstruction, TraceUsesDeltaGrid) {
  const std::vector<ChunkObservation> obs{warm_observation(0.0, 2.0)};
  const std::vector<std::size_t> states{2};
  const auto trace = states_to_trace(kSpace, states, obs, 2.5, 10.0);
  EXPECT_DOUBLE_EQ(trace.interval_s(), 2.5);
  EXPECT_EQ(trace.windows(), 4u);
}

TEST(Reconstruction, RejectsBadInput) {
  const std::vector<ChunkObservation> obs{warm_observation(0.0, 2.0)};
  const std::vector<std::size_t> none;
  EXPECT_THROW(states_to_trace(kSpace, none, obs, kDelta, 10.0),
               veritas::ContractViolation);
  const std::vector<std::size_t> mismatched{1, 2};
  EXPECT_THROW(states_to_trace(kSpace, mismatched, obs, kDelta, 10.0),
               veritas::ContractViolation);
  const std::vector<std::size_t> out_of_range{99};
  EXPECT_THROW(states_to_trace(kSpace, out_of_range, obs, kDelta, 10.0),
               veritas::ContractViolation);
}

}  // namespace
}  // namespace veritas::core
