#include "core/transition_model.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "math/distributions.hpp"
#include "util/expects.hpp"

namespace veritas::core {
namespace {

TEST(TransitionModel, TridiagonalStructure) {
  const TransitionModel m = TransitionModel::tridiagonal(5, 0.8);
  const math::Matrix& a = m.matrix();
  EXPECT_TRUE(a.is_row_stochastic(1e-12));
  // Interior row: stay 0.8, each neighbour 0.1, others 0.
  EXPECT_DOUBLE_EQ(a(2, 2), 0.8);
  EXPECT_DOUBLE_EQ(a(2, 1), 0.1);
  EXPECT_DOUBLE_EQ(a(2, 3), 0.1);
  EXPECT_DOUBLE_EQ(a(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(2, 4), 0.0);
}

TEST(TransitionModel, TridiagonalBoundaryRenormalized) {
  const TransitionModel m = TransitionModel::tridiagonal(5, 0.8);
  const math::Matrix& a = m.matrix();
  EXPECT_DOUBLE_EQ(a(0, 0), 0.9);  // absorbs the missing left step
  EXPECT_DOUBLE_EQ(a(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(a(4, 4), 0.9);
  EXPECT_DOUBLE_EQ(a(4, 3), 0.1);
}

TEST(TransitionModel, UniformInitialDistribution) {
  const TransitionModel m = TransitionModel::tridiagonal(4);
  for (const double u : m.initial()) EXPECT_DOUBLE_EQ(u, 0.25);
}

TEST(TransitionModel, UniformPrior) {
  const TransitionModel m = TransitionModel::uniform(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(m.matrix()(i, j), 0.25);
    }
  }
}

TEST(TransitionModel, BandedStructure) {
  const TransitionModel m = TransitionModel::banded(7, 2, 0.5);
  const math::Matrix& a = m.matrix();
  EXPECT_TRUE(a.is_row_stochastic(1e-12));
  EXPECT_DOUBLE_EQ(a(3, 0), 0.0);  // outside band
  EXPECT_GT(a(3, 3), a(3, 4));     // decays off-diagonal
  EXPECT_GT(a(3, 4), a(3, 5));
  EXPECT_NEAR(a(3, 2), a(3, 4), 1e-12);  // symmetric
}

TEST(TransitionModel, PowerZeroIsIdentity) {
  const TransitionModel m = TransitionModel::tridiagonal(4);
  EXPECT_DOUBLE_EQ(m.power(0).max_abs_diff(math::Matrix::identity(4)), 0.0);
}

TEST(TransitionModel, PowerOneIsMatrix) {
  const TransitionModel m = TransitionModel::tridiagonal(4);
  EXPECT_DOUBLE_EQ(m.power(1).max_abs_diff(m.matrix()), 0.0);
}

TEST(TransitionModel, PowersConsistent) {
  const TransitionModel m = TransitionModel::tridiagonal(6);
  const math::Matrix a2 = m.matrix() * m.matrix();
  EXPECT_LT(m.power(2).max_abs_diff(a2), 1e-12);
  const math::Matrix a5 = a2 * a2 * m.matrix();
  EXPECT_LT(m.power(5).max_abs_diff(a5), 1e-12);
}

TEST(TransitionModel, PowerCacheReturnsSameObject) {
  const TransitionModel m = TransitionModel::tridiagonal(4);
  const math::Matrix& first = m.power(7);
  const math::Matrix& second = m.power(7);
  EXPECT_EQ(&first, &second);
}

TEST(TransitionModel, CustomMatrixValidated) {
  math::Matrix bad(2, 2, 0.7);  // rows sum to 1.4
  EXPECT_THROW(TransitionModel(bad, {0.5, 0.5}), veritas::ContractViolation);
  math::Matrix good = math::Matrix::from_rows({{0.5, 0.5}, {0.3, 0.7}});
  EXPECT_THROW(TransitionModel(good, {0.9, 0.9}),  // initial not normalized
               veritas::ContractViolation);
  EXPECT_NO_THROW(TransitionModel(good, {0.5, 0.5}));
}

TEST(TransitionModel, HighStayProbabilityConcentratesPower) {
  // With stay = 0.98, A^3 still keeps most mass on the diagonal.
  const TransitionModel m = TransitionModel::tridiagonal(9, 0.98);
  const math::Matrix& p = m.power(3);
  EXPECT_GT(p(4, 4), 0.9);
}

TEST(TransitionModel, PrecomputedPowersMatchFallbackBitExactly) {
  TransitionModel dense = TransitionModel::tridiagonal(6);
  dense.precompute_powers(16);
  EXPECT_EQ(dense.precomputed_powers(), 17u);
  const TransitionModel lazy = TransitionModel::tridiagonal(6);
  for (std::size_t delta = 0; delta <= 20; ++delta) {
    EXPECT_EQ(dense.power(delta).max_abs_diff(lazy.power(delta)), 0.0)
        << "delta " << delta;
  }
}

TEST(TransitionModel, PowerViewLayoutsAreConsistent) {
  TransitionModel m = TransitionModel::tridiagonal(5);
  m.precompute_powers(4);
  for (std::size_t delta = 0; delta <= 4; ++delta) {
    const TransitionModel::PowerView view = m.power_view(delta);
    ASSERT_NE(view.p, nullptr);
    ASSERT_NE(view.transposed, nullptr);
    ASSERT_NE(view.log_transposed, nullptr);
    for (std::size_t i = 0; i < 5; ++i) {
      for (std::size_t j = 0; j < 5; ++j) {
        EXPECT_EQ((*view.transposed)(i, j), (*view.p)(j, i));
        EXPECT_EQ((*view.log_transposed)(i, j),
                  math::safe_log((*view.p)(j, i)));
      }
    }
  }
  // Beyond the dense table: the matrix is served, the layouts are not.
  const TransitionModel::PowerView beyond = m.power_view(9);
  ASSERT_NE(beyond.p, nullptr);
  EXPECT_EQ(beyond.transposed, nullptr);
  EXPECT_EQ(beyond.log_transposed, nullptr);
}

TEST(TransitionModel, PrecomputeIsIdempotentAndOnlyGrows) {
  TransitionModel m = TransitionModel::tridiagonal(4);
  m.precompute_powers(8);
  const math::Matrix* before = &m.power(5);
  m.precompute_powers(4);  // no-op: table already larger
  EXPECT_EQ(m.precomputed_powers(), 9u);
  EXPECT_EQ(&m.power(5), before);
  m.precompute_powers(12);
  EXPECT_EQ(m.precomputed_powers(), 13u);
}

TEST(TransitionModel, ConcurrentOverflowLookupsAreSafeAndStable) {
  // Many threads hammer deltas beyond the dense table; every returned
  // reference must stay valid and correct (the memo is mutex-guarded and
  // std::map nodes are stable).
  TransitionModel m = TransitionModel::tridiagonal(5);
  m.precompute_powers(2);
  const math::Matrix expected = math::matrix_power(m.matrix(), 33);
  std::vector<std::thread> threads;
  std::vector<double> worst(8, 1.0);
  for (std::size_t t = 0; t < worst.size(); ++t) {
    threads.emplace_back([&, t] {
      double local = 0.0;
      for (std::size_t delta = 30; delta < 40; ++delta) {
        const math::Matrix& p = m.power(delta);
        if (delta == 33) local = std::max(local, p.max_abs_diff(expected));
      }
      worst[t] = local;
    });
  }
  for (auto& thread : threads) thread.join();
  for (const double w : worst) EXPECT_EQ(w, 0.0);
}

TEST(TransitionModel, SharedLockHitsCoexistWithFirstComputeWriters) {
  // The read-mostly overflow memo (PR 7): half the threads hammer a
  // pre-warmed delta through the shared-lock fast path while the other
  // half race to first-compute fresh deltas under the exclusive lock.
  // Every reference must stay valid across the writers' insertions
  // (std::map node stability) and every matrix must be exact.
  TransitionModel m = TransitionModel::tridiagonal(6);
  m.precompute_powers(2);
  const math::Matrix warm_expected = math::matrix_power(m.matrix(), 50);
  const math::Matrix& warm = m.power(50);  // memoize before the storm
  ASSERT_EQ(warm.max_abs_diff(warm_expected), 0.0);

  std::vector<std::thread> threads;
  std::vector<double> worst(8, 1.0);
  for (std::size_t t = 0; t < worst.size(); ++t) {
    threads.emplace_back([&, t] {
      double local = 0.0;
      if (t % 2 == 0) {
        // Reader lane: repeated hits on the warm delta; the reference
        // taken before the writers started must keep reading correctly.
        for (int round = 0; round < 200; ++round) {
          local = std::max(local, m.power(50).max_abs_diff(warm_expected));
          local = std::max(local, warm.max_abs_diff(warm_expected));
        }
      } else {
        // Writer lane: unique fresh deltas per thread, so every thread
        // takes the exclusive first-compute path at least once.
        for (std::size_t delta = 60 + t * 10; delta < 60 + t * 10 + 10;
             ++delta) {
          const math::Matrix& p = m.power(delta);
          local = std::max(
              local, p.max_abs_diff(math::matrix_power(m.matrix(), delta)));
        }
      }
      worst[t] = local;
    });
  }
  for (auto& thread : threads) thread.join();
  for (const double w : worst) EXPECT_EQ(w, 0.0);
}

TEST(TransitionModel, CopyPreservesDenseTableAndIndependence) {
  TransitionModel original = TransitionModel::tridiagonal(4);
  original.precompute_powers(6);
  const TransitionModel copy = original;
  EXPECT_EQ(copy.precomputed_powers(), 7u);
  EXPECT_EQ(copy.power(5).max_abs_diff(original.power(5)), 0.0);
  // Distinct storage: the copy serves its own matrices.
  EXPECT_NE(&copy.power(5), &original.power(5));
}

}  // namespace
}  // namespace veritas::core
