#include "core/baseline.hpp"

#include <gtest/gtest.h>

#include "core/test_helpers.hpp"
#include "util/expects.hpp"

namespace veritas::core {
namespace {

sim::ChunkLog chunk(double start, double end, double size_bytes) {
  sim::ChunkLog c;
  c.start_s = start;
  c.end_s = end;
  c.size_bytes = size_bytes;
  return c;
}

TEST(Baseline, UsesObservedThroughputDuringDownloads) {
  sim::SessionLog log;
  // 1 Mbit in 1 s = 1 Mbps over [0, 1].
  log.chunks.push_back(chunk(0.0, 1.0, 125000.0));
  const auto trace = baseline_trace(log, 0.5);
  EXPECT_NEAR(trace.at(0.4), 1.0, 1e-9);
}

TEST(Baseline, InterpolatesOffPeriods) {
  sim::SessionLog log;
  log.chunks.push_back(chunk(0.0, 1.0, 125000.0));   // 1 Mbps
  log.chunks.push_back(chunk(3.0, 4.0, 375000.0));   // 3 Mbps
  const auto trace = baseline_trace(log, 0.5);
  // Off period [1, 3]: values ramp linearly 1 -> 3 Mbps (each grid cell
  // is evaluated at its midpoint, so allow half-cell slack).
  EXPECT_NEAR(trace.at(2.0), 2.0, 0.3);
  EXPECT_LT(trace.at(1.3), trace.at(2.0));
  EXPECT_LT(trace.at(2.0), trace.at(2.8));
}

TEST(Baseline, ExtendsLastThroughputPastEnd) {
  sim::SessionLog log;
  log.chunks.push_back(chunk(0.0, 1.0, 250000.0));  // 2 Mbps
  const auto trace = baseline_trace(log, 0.5, 20.0);
  EXPECT_NEAR(trace.at(15.0), 2.0, 1e-9);
}

TEST(Baseline, CoverageAtLeastLogDuration) {
  sim::SessionLog log;
  log.chunks.push_back(chunk(0.0, 1.0, 125000.0));
  log.chunks.push_back(chunk(5.0, 9.0, 125000.0));
  const auto trace = baseline_trace(log, 1.0);
  EXPECT_GE(trace.duration_s(), 9.0);
}

TEST(Baseline, UnderestimatesWhenChunksAreSmall) {
  // The paper's core observation: an MPC deployment on a constant-4Mbps
  // link picks chunks whose observed throughput is depressed by slow
  // start; the Baseline reconstruction inherits that bias.
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 100);
  const auto baseline = baseline_trace(log);
  double sum = 0.0;
  std::size_t count = 0;
  for (double t = 10.0; t < 190.0; t += 1.0) {
    sum += baseline.at(t);
    ++count;
  }
  const double mean = sum / double(count);
  EXPECT_LT(mean, 4.0);  // never above the link
  EXPECT_GT(mean, 0.5);  // but not absurdly low
}

TEST(Baseline, RejectsEmptyLog) {
  sim::SessionLog log;
  EXPECT_THROW(baseline_trace(log), veritas::ContractViolation);
}

TEST(Baseline, FirstWindowUsesFirstChunk) {
  sim::SessionLog log;
  log.chunks.push_back(chunk(5.0, 6.0, 125000.0));  // 1 Mbps, starts late
  const auto trace = baseline_trace(log, 1.0);
  EXPECT_NEAR(trace.at(0.5), 1.0, 1e-9);
}

}  // namespace
}  // namespace veritas::core
