#include "core/state_space.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

namespace veritas::core {
namespace {

TEST(StateSpace, PaperDefaultGrid) {
  // ε = 0.5, max 10 -> states {0, 0.5, ..., 10} = 21 states.
  const StateSpace s(0.5, 10.0);
  EXPECT_EQ(s.size(), 21u);
  EXPECT_DOUBLE_EQ(s.value(0), 0.0);
  EXPECT_DOUBLE_EQ(s.value(1), 0.5);
  EXPECT_DOUBLE_EQ(s.value(20), 10.0);
  EXPECT_DOUBLE_EQ(s.epsilon_mbps(), 0.5);
  EXPECT_DOUBLE_EQ(s.max_mbps(), 10.0);
}

TEST(StateSpace, NonDivisibleMaxRoundsUp) {
  const StateSpace s(0.5, 10.2);
  EXPECT_GE(s.max_mbps(), 10.2);
}

TEST(StateSpace, NearestIndexRounds) {
  const StateSpace s(0.5, 10.0);
  EXPECT_EQ(s.nearest_index(0.0), 0u);
  EXPECT_EQ(s.nearest_index(0.24), 0u);
  EXPECT_EQ(s.nearest_index(0.26), 1u);
  EXPECT_EQ(s.nearest_index(3.5), 7u);
  EXPECT_EQ(s.nearest_index(100.0), 20u);  // clamped
}

TEST(StateSpace, NearestIndexInvertsValue) {
  const StateSpace s(0.25, 8.0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.nearest_index(s.value(i)), i);
  }
}

TEST(StateSpace, ValuesVector) {
  const StateSpace s(1.0, 3.0);
  const auto values = s.values();
  ASSERT_EQ(values.size(), 4u);
  EXPECT_DOUBLE_EQ(values[3], 3.0);
}

TEST(StateSpace, RejectsBadArguments) {
  EXPECT_THROW(StateSpace(0.0, 10.0), veritas::ContractViolation);
  EXPECT_THROW(StateSpace(2.0, 1.0), veritas::ContractViolation);
  const StateSpace s(0.5, 10.0);
  EXPECT_THROW(s.value(21), veritas::ContractViolation);
  EXPECT_THROW(s.nearest_index(-1.0), veritas::ContractViolation);
}

}  // namespace
}  // namespace veritas::core
