#include "core/baum_welch.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/test_helpers.hpp"
#include "util/expects.hpp"
#include "util/rng.hpp"

namespace veritas::core {
namespace {

using testing::small_ehmm;
using testing::warm_observation;

// Synthesizes observation sequences from a known chain so EM has ground
// truth to recover: states on {0..3} Mbps (ε = 1), chunks spaced exactly
// δ apart (Δ = 1 everywhere -> exact EM).
std::vector<std::vector<ChunkObservation>> synthetic_sessions(
    const math::Matrix& a, double sigma, std::size_t sessions,
    std::size_t chunks, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<ChunkObservation>> out;
  for (std::size_t s = 0; s < sessions; ++s) {
    std::vector<ChunkObservation> obs;
    std::size_t state = static_cast<std::size_t>(rng.uniform_int(0, 3));
    for (std::size_t n = 0; n < chunks; ++n) {
      // Emission: warm connection, big chunk -> Y ~ Normal(state, sigma).
      const double y =
          std::max(0.05, rng.normal(static_cast<double>(state), sigma));
      obs.push_back(warm_observation(double(n) * 5.0, y, 8e6));
      state = rng.categorical(a.row(state));
    }
    out.push_back(std::move(obs));
  }
  return out;
}

TEST(BaumWelch, LikelihoodNonDecreasingWithDeltaOne) {
  const Ehmm init = small_ehmm(0.5, 0.6);
  const math::Matrix truth = math::Matrix::from_rows({{0.7, 0.3, 0.0, 0.0},
                                                      {0.15, 0.7, 0.15, 0.0},
                                                      {0.0, 0.15, 0.7, 0.15},
                                                      {0.0, 0.0, 0.3, 0.7}});
  const auto sessions = synthetic_sessions(truth, 0.4, 4, 60, 11);
  BaumWelchConfig cfg;
  cfg.max_iterations = 15;
  const BaumWelchResult result = baum_welch_train(init, sessions, cfg);
  ASSERT_GE(result.log_likelihoods.size(), 2u);
  for (std::size_t i = 1; i < result.log_likelihoods.size(); ++i) {
    EXPECT_GE(result.log_likelihoods[i],
              result.log_likelihoods[i - 1] - 1e-6)
        << "iteration " << i;
  }
}

TEST(BaumWelch, RecoversStayProbability) {
  // Strongly sticky truth vs a vague initial guess.
  const math::Matrix truth = math::Matrix::from_rows({{0.9, 0.1, 0.0, 0.0},
                                                      {0.05, 0.9, 0.05, 0.0},
                                                      {0.0, 0.05, 0.9, 0.05},
                                                      {0.0, 0.0, 0.1, 0.9}});
  const auto sessions = synthetic_sessions(truth, 0.3, 6, 80, 13);
  const Ehmm init = small_ehmm(0.3, 0.5);
  BaumWelchConfig cfg;
  cfg.max_iterations = 25;
  const BaumWelchResult result = baum_welch_train(init, sessions, cfg);
  double mean_stay = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    mean_stay += result.transition.matrix()(i, i) / 4.0;
  }
  EXPECT_GT(mean_stay, 0.75);
}

TEST(BaumWelch, TrainedTransitionIsStochastic) {
  const Ehmm init = small_ehmm();
  const auto sessions =
      synthetic_sessions(init.transition().matrix(), 0.5, 2, 40, 17);
  const BaumWelchResult result = baum_welch_train(init, sessions);
  EXPECT_TRUE(result.transition.matrix().is_row_stochastic(1e-6));
  double u_sum = 0.0;
  for (const double u : result.transition.initial()) u_sum += u;
  EXPECT_NEAR(u_sum, 1.0, 1e-6);
}

TEST(BaumWelch, SigmaReestimationApproachesTruth) {
  const math::Matrix truth = math::Matrix::from_rows({{0.8, 0.2, 0.0, 0.0},
                                                      {0.1, 0.8, 0.1, 0.0},
                                                      {0.0, 0.1, 0.8, 0.1},
                                                      {0.0, 0.0, 0.2, 0.8}});
  const double true_sigma = 0.35;
  const auto sessions = synthetic_sessions(truth, true_sigma, 6, 80, 19);
  const Ehmm init = small_ehmm(1.5);  // start far away
  BaumWelchConfig cfg;
  cfg.update_sigma = true;
  cfg.max_iterations = 25;
  const BaumWelchResult result = baum_welch_train(init, sessions, cfg);
  EXPECT_NEAR(result.sigma_mbps, true_sigma, 0.15);
}

TEST(BaumWelch, FrozenUpdatesKeepParameters) {
  const Ehmm init = small_ehmm();
  const auto sessions =
      synthetic_sessions(init.transition().matrix(), 0.5, 2, 30, 23);
  BaumWelchConfig cfg;
  cfg.update_transition = false;
  cfg.update_initial = false;
  cfg.update_sigma = false;
  cfg.max_iterations = 3;
  const BaumWelchResult result = baum_welch_train(init, sessions, cfg);
  EXPECT_LT(result.transition.matrix().max_abs_diff(init.transition().matrix()),
            1e-12);
  EXPECT_DOUBLE_EQ(result.sigma_mbps, init.emission().sigma_mbps());
}

TEST(BaumWelch, StopsOnConvergence) {
  const Ehmm init = small_ehmm();
  const auto sessions =
      synthetic_sessions(init.transition().matrix(), 0.5, 2, 30, 29);
  BaumWelchConfig cfg;
  cfg.max_iterations = 50;
  cfg.tolerance = 1e-3;
  const BaumWelchResult result = baum_welch_train(init, sessions, cfg);
  EXPECT_LT(result.iterations, 50u);
}

TEST(BaumWelch, RejectsEmptyInput) {
  const Ehmm init = small_ehmm();
  const std::vector<std::vector<ChunkObservation>> empty;
  EXPECT_THROW(baum_welch_train(init, empty), veritas::ContractViolation);
}

}  // namespace
}  // namespace veritas::core
