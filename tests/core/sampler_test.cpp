#include "core/sampler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/test_helpers.hpp"

namespace veritas::core {
namespace {

using testing::small_ehmm;
using testing::warm_observation;

std::vector<ChunkObservation> sequence() {
  return {warm_observation(0.0, 1.1), warm_observation(6.0, 1.9),
          warm_observation(12.0, 2.2), warm_observation(18.0, 1.8),
          warm_observation(24.0, 0.6), warm_observation(31.0, 0.4)};
}

// Fixture bundling one fused pass: viterbi + forward-backward sharing
// the scratch the xi-free sampler reads from.
struct Pass {
  Ehmm::Scratch scratch;
  Ehmm::InferencePass pass;
  Pass(const Ehmm& ehmm, const std::vector<ChunkObservation>& obs)
      : pass(ehmm.infer_fused(obs, scratch)) {}
  const Ehmm::ViterbiResult& viterbi() const { return pass.viterbi; }
  const Ehmm::ForwardBackwardResult& fb() const {
    return pass.forward_backward;
  }
};

TEST(Sampler, LastStatePinnedToViterbi) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = sequence();
  const Pass p(ehmm, obs);
  util::Rng rng(1);
  for (int k = 0; k < 20; ++k) {
    const auto states =
        sample_capacity_states(ehmm, p.viterbi(), p.fb(), p.scratch, rng);
    EXPECT_EQ(states.back(), p.viterbi().states.back());
  }
}

TEST(Sampler, StatesWithinSpace) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = sequence();
  const Pass p(ehmm, obs);
  util::Rng rng(2);
  for (int k = 0; k < 50; ++k) {
    for (const std::size_t s :
         sample_capacity_states(ehmm, p.viterbi(), p.fb(), p.scratch, rng)) {
      EXPECT_LT(s, ehmm.space().size());
    }
  }
}

TEST(Sampler, DeterministicGivenRngState) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = sequence();
  const Pass p(ehmm, obs);
  util::Rng rng1(7), rng2(7);
  EXPECT_EQ(sample_capacity_states(ehmm, p.viterbi(), p.fb(), p.scratch, rng1),
            sample_capacity_states(ehmm, p.viterbi(), p.fb(), p.scratch,
                                   rng2));
}

TEST(Sampler, SamplesVaryWhenPosteriorIsWide) {
  // Wide emission noise -> uncertain posterior -> diverse samples.
  const Ehmm ehmm = small_ehmm(2.0);
  const auto obs = sequence();
  const Pass p(ehmm, obs);
  util::Rng rng(3);
  std::map<std::vector<std::size_t>, int> seen;
  for (int k = 0; k < 50; ++k) {
    ++seen[sample_capacity_states(ehmm, p.viterbi(), p.fb(), p.scratch, rng)];
  }
  EXPECT_GT(seen.size(), 3u);
}

TEST(Sampler, SamplesConcentrateWhenPosteriorIsSharp) {
  const Ehmm ehmm = small_ehmm(0.05);
  const auto obs = sequence();
  const Pass p(ehmm, obs);
  util::Rng rng(4);
  std::map<std::vector<std::size_t>, int> seen;
  for (int k = 0; k < 50; ++k) {
    ++seen[sample_capacity_states(ehmm, p.viterbi(), p.fb(), p.scratch, rng)];
  }
  EXPECT_LE(seen.size(), 3u);
  // And the MAP path dominates.
  EXPECT_GT(seen[p.viterbi().states], 25);
}

TEST(Sampler, MarginalFrequenciesTrackPosterior) {
  const Ehmm ehmm = small_ehmm(1.0);
  const auto obs = sequence();
  const Pass p(ehmm, obs);
  util::Rng rng(5);
  const int trials = 4000;
  // Track frequency of each state at chunk 2 with a *posterior-sampled*
  // final state (pure FFBS: frequencies must match gamma exactly).
  SamplerConfig cfg;
  cfg.last_state = SamplerConfig::LastState::kPosterior;
  std::vector<double> freq(ehmm.space().size(), 0.0);
  for (int k = 0; k < trials; ++k) {
    const auto states =
        sample_capacity_states(ehmm, p.viterbi(), p.fb(), p.scratch, rng, cfg);
    freq[states[2]] += 1.0 / trials;
  }
  for (std::size_t i = 0; i < freq.size(); ++i) {
    EXPECT_NEAR(freq[i], p.fb().gamma(2, i), 0.03) << "state " << i;
  }
}

TEST(Sampler, PosteriorLastStateRespectsGamma) {
  const Ehmm ehmm = small_ehmm(1.0);
  const auto obs = sequence();
  const Pass p(ehmm, obs);
  SamplerConfig cfg;
  cfg.last_state = SamplerConfig::LastState::kPosterior;
  util::Rng rng(6);
  const int trials = 4000;
  std::vector<double> freq(ehmm.space().size(), 0.0);
  const std::size_t last = obs.size() - 1;
  for (int k = 0; k < trials; ++k) {
    freq[sample_capacity_states(ehmm, p.viterbi(), p.fb(), p.scratch, rng, cfg)
             .back()] += 1.0 / trials;
  }
  for (std::size_t i = 0; i < freq.size(); ++i) {
    EXPECT_NEAR(freq[i], p.fb().gamma(last, i), 0.03) << "state " << i;
  }
}

TEST(Sampler, SingleObservationWorks) {
  const Ehmm ehmm = small_ehmm();
  const std::vector<ChunkObservation> obs{warm_observation(0.0, 2.0)};
  const Pass p(ehmm, obs);
  util::Rng rng(8);
  const auto states =
      sample_capacity_states(ehmm, p.viterbi(), p.fb(), p.scratch, rng);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0], p.viterbi().states[0]);
}

// The xi-free sampler must reproduce the seed's xi-based draws bit for
// bit: replay the seed algorithm against pair matrices materialized by
// the compatibility accessor and compare sequences at fixed seeds.
std::vector<std::size_t> seed_sampler_reference(
    const Ehmm& ehmm, const Ehmm::ViterbiResult& viterbi,
    const Ehmm::ForwardBackwardResult& fb, const Ehmm::Scratch& scratch,
    util::Rng& rng, const SamplerConfig& config) {
  const std::size_t n_obs = viterbi.states.size();
  const std::size_t k = fb.gamma.cols();
  std::vector<math::Matrix> xi;
  for (std::size_t n = 0; n + 1 < n_obs; ++n) {
    xi.push_back(ehmm.pair_posterior(fb, scratch, n));
  }
  std::vector<std::size_t> states(n_obs, 0);
  switch (config.last_state) {
    case SamplerConfig::LastState::kViterbi:
      states[n_obs - 1] = viterbi.states[n_obs - 1];
      break;
    case SamplerConfig::LastState::kPosterior:
      states[n_obs - 1] = rng.categorical(fb.gamma.row(n_obs - 1));
      break;
  }
  std::vector<double> weights(k, 0.0);
  for (std::size_t n = n_obs - 1; n-- > 0;) {
    const math::Matrix& pair = xi[n];
    const std::size_t next = states[n + 1];
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      weights[i] = pair(i, next);
      total += weights[i];
    }
    if (total <= 0.0) {
      for (std::size_t i = 0; i < k; ++i) weights[i] = fb.gamma(n, i);
    }
    states[n] = rng.categorical(weights);
  }
  return states;
}

TEST(Sampler, XiFreeDrawsMatchSeedXiSamplerBitExactly) {
  for (const double sigma : {0.05, 0.5, 2.0}) {
    const Ehmm ehmm = small_ehmm(sigma);
    const auto obs = sequence();
    const Pass p(ehmm, obs);
    for (const auto last_state : {SamplerConfig::LastState::kViterbi,
                                  SamplerConfig::LastState::kPosterior}) {
      SamplerConfig cfg;
      cfg.last_state = last_state;
      for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        util::Rng rng_new(seed), rng_ref(seed);
        EXPECT_EQ(ehmm.sample_posterior(p.viterbi(), p.fb(), p.scratch,
                                        rng_new, cfg),
                  seed_sampler_reference(ehmm, p.viterbi(), p.fb(), p.scratch,
                                         rng_ref, cfg))
            << "sigma " << sigma << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace veritas::core
