#include "core/sampler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/test_helpers.hpp"

namespace veritas::core {
namespace {

using testing::small_ehmm;
using testing::warm_observation;

std::vector<ChunkObservation> sequence() {
  return {warm_observation(0.0, 1.1), warm_observation(6.0, 1.9),
          warm_observation(12.0, 2.2), warm_observation(18.0, 1.8),
          warm_observation(24.0, 0.6), warm_observation(31.0, 0.4)};
}

TEST(Sampler, LastStatePinnedToViterbi) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = sequence();
  const auto viterbi = ehmm.viterbi(obs);
  const auto fb = ehmm.forward_backward(obs);
  util::Rng rng(1);
  for (int k = 0; k < 20; ++k) {
    const auto states = sample_capacity_states(viterbi, fb, rng);
    EXPECT_EQ(states.back(), viterbi.states.back());
  }
}

TEST(Sampler, StatesWithinSpace) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = sequence();
  const auto viterbi = ehmm.viterbi(obs);
  const auto fb = ehmm.forward_backward(obs);
  util::Rng rng(2);
  for (int k = 0; k < 50; ++k) {
    for (const std::size_t s : sample_capacity_states(viterbi, fb, rng)) {
      EXPECT_LT(s, ehmm.space().size());
    }
  }
}

TEST(Sampler, DeterministicGivenRngState) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = sequence();
  const auto viterbi = ehmm.viterbi(obs);
  const auto fb = ehmm.forward_backward(obs);
  util::Rng rng1(7), rng2(7);
  EXPECT_EQ(sample_capacity_states(viterbi, fb, rng1),
            sample_capacity_states(viterbi, fb, rng2));
}

TEST(Sampler, SamplesVaryWhenPosteriorIsWide) {
  // Wide emission noise -> uncertain posterior -> diverse samples.
  const Ehmm ehmm = small_ehmm(2.0);
  const auto obs = sequence();
  const auto viterbi = ehmm.viterbi(obs);
  const auto fb = ehmm.forward_backward(obs);
  util::Rng rng(3);
  std::map<std::vector<std::size_t>, int> seen;
  for (int k = 0; k < 50; ++k) {
    ++seen[sample_capacity_states(viterbi, fb, rng)];
  }
  EXPECT_GT(seen.size(), 3u);
}

TEST(Sampler, SamplesConcentrateWhenPosteriorIsSharp) {
  const Ehmm ehmm = small_ehmm(0.05);
  const auto obs = sequence();
  const auto viterbi = ehmm.viterbi(obs);
  const auto fb = ehmm.forward_backward(obs);
  util::Rng rng(4);
  std::map<std::vector<std::size_t>, int> seen;
  for (int k = 0; k < 50; ++k) {
    ++seen[sample_capacity_states(viterbi, fb, rng)];
  }
  EXPECT_LE(seen.size(), 3u);
  // And the MAP path dominates.
  EXPECT_GT(seen[viterbi.states], 25);
}

TEST(Sampler, MarginalFrequenciesTrackPosterior) {
  const Ehmm ehmm = small_ehmm(1.0);
  const auto obs = sequence();
  const auto viterbi = ehmm.viterbi(obs);
  const auto fb = ehmm.forward_backward(obs);
  util::Rng rng(5);
  const int trials = 4000;
  // Track frequency of each state at chunk 2 with a *posterior-sampled*
  // final state (pure FFBS: frequencies must match gamma exactly).
  SamplerConfig cfg;
  cfg.last_state = SamplerConfig::LastState::kPosterior;
  std::vector<double> freq(ehmm.space().size(), 0.0);
  for (int k = 0; k < trials; ++k) {
    const auto states = sample_capacity_states(viterbi, fb, rng, cfg);
    freq[states[2]] += 1.0 / trials;
  }
  for (std::size_t i = 0; i < freq.size(); ++i) {
    EXPECT_NEAR(freq[i], fb.gamma(2, i), 0.03) << "state " << i;
  }
}

TEST(Sampler, PosteriorLastStateRespectsGamma) {
  const Ehmm ehmm = small_ehmm(1.0);
  const auto obs = sequence();
  const auto viterbi = ehmm.viterbi(obs);
  const auto fb = ehmm.forward_backward(obs);
  SamplerConfig cfg;
  cfg.last_state = SamplerConfig::LastState::kPosterior;
  util::Rng rng(6);
  const int trials = 4000;
  std::vector<double> freq(ehmm.space().size(), 0.0);
  const std::size_t last = obs.size() - 1;
  for (int k = 0; k < trials; ++k) {
    freq[sample_capacity_states(viterbi, fb, rng, cfg).back()] += 1.0 / trials;
  }
  for (std::size_t i = 0; i < freq.size(); ++i) {
    EXPECT_NEAR(freq[i], fb.gamma(last, i), 0.03) << "state " << i;
  }
}

TEST(Sampler, SingleObservationWorks) {
  const Ehmm ehmm = small_ehmm();
  const std::vector<ChunkObservation> obs{warm_observation(0.0, 2.0)};
  const auto viterbi = ehmm.viterbi(obs);
  const auto fb = ehmm.forward_backward(obs);
  util::Rng rng(8);
  const auto states = sample_capacity_states(viterbi, fb, rng);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(states[0], viterbi.states[0]);
}

}  // namespace
}  // namespace veritas::core
