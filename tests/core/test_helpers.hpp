// Shared fixtures for core (EHMM) tests: synthetic observation sequences
// with controlled timing, plus small hand-checkable model builders.
#pragma once

#include <vector>

#include "core/ehmm.hpp"
#include "core/observation.hpp"
#include "net/tcp_model.hpp"
#include "net/network_path.hpp"
#include "sim/session.hpp"
#include "abr/abr_factory.hpp"
#include "trace/bandwidth_trace.hpp"
#include "video/ladder_presets.hpp"

namespace veritas::core::testing {

/// An observation for a chunk of `size_bytes` starting at `start_s` whose
/// observed throughput is `y_mbps`, with a steady (warm) TCP state large
/// enough that the estimator is in its saturated branch.
inline ChunkObservation warm_observation(double start_s, double y_mbps,
                                         double size_bytes = 2e6) {
  ChunkObservation obs;
  obs.throughput_mbps = y_mbps;
  obs.size_bytes = size_bytes;
  obs.start_s = start_s;
  obs.end_s = start_s + size_bytes * 8.0 / 1e6 / y_mbps;
  obs.tcp.cwnd_segments = 10000.0;
  obs.tcp.ssthresh_segments = 5000.0;
  obs.tcp.rto_s = 0.2;
  obs.tcp.min_rtt_s = 0.08;
  obs.tcp.rtt_s = 0.08;
  obs.tcp.last_send_gap_s = 0.0;
  return obs;
}

/// Small EHMM over states {0, 1, 2, 3} Mbps (ε = 1), δ = 5 s.
inline Ehmm small_ehmm(double sigma = 0.5, double stay = 0.8) {
  StateSpace space(1.0, 3.0);
  TransitionModel transition = TransitionModel::tridiagonal(space.size(), stay);
  EmissionModel emission(sigma);
  return Ehmm(std::move(space), std::move(transition), std::move(emission),
              5.0);
}

/// Runs an MPC session over `gtbw` and returns its log (deployment step).
inline sim::SessionLog deployed_log(const trace::BandwidthTrace& gtbw,
                                    std::size_t chunks = 60) {
  video::VideoConfig cfg = video::default_video_config();
  cfg.duration_s = double(chunks) * cfg.chunk_duration_s;
  const video::Video video(cfg);
  auto abr = abr::make_abr("mpc");
  const net::NetworkPath path(gtbw, 0.08);
  return sim::run_session(video, *abr, path).log;
}

}  // namespace veritas::core::testing
