#include "core/veritas.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/test_helpers.hpp"
#include "trace/trace_generator.hpp"
#include "util/expects.hpp"

namespace veritas::core {
namespace {

TEST(Veritas, RecoversConstantBandwidth) {
  // Oracle-recovery property: constant GTBW on the ε grid must be
  // reconstructed almost exactly from an MPC deployment log.
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 150);
  const Veritas veritas;
  const VeritasResult result = veritas.infer(log);
  EXPECT_LT(gtbw.mean_abs_diff_mbps(result.map_trace), 0.6);
}

TEST(Veritas, BeatsBaselineOnRegimeTraces) {
  // The paper's headline inference property (Fig. 7): the MAP trace and
  // every posterior sample are closer to GTBW than Baseline.
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 3, 31);
  const Veritas veritas;
  for (const auto& gtbw : traces) {
    const sim::SessionLog log = testing::deployed_log(gtbw, 150);
    const VeritasResult result = veritas.infer(log);
    const auto baseline = veritas.baseline(log);
    const double baseline_err = gtbw.mean_abs_diff_mbps(baseline);
    EXPECT_LT(gtbw.mean_abs_diff_mbps(result.map_trace), baseline_err);
    for (const auto& sample : result.samples) {
      EXPECT_LT(gtbw.mean_abs_diff_mbps(sample), baseline_err);
    }
  }
}

TEST(Veritas, BaselineUnderestimatesVeritasDoesNot) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 3, 37);
  const Veritas veritas;
  for (const auto& gtbw : traces) {
    const sim::SessionLog log = testing::deployed_log(gtbw, 150);
    const VeritasResult result = veritas.infer(log);
    const auto baseline = veritas.baseline(log);
    double gt_mean = 0.0, base_mean = 0.0, map_mean = 0.0;
    const double horizon = log.chunks.back().end_s;
    int count = 0;
    for (double t = 0.0; t < horizon; t += 1.0) {
      gt_mean += gtbw.at(t);
      base_mean += baseline.at(t);
      map_mean += result.map_trace.at(t);
      ++count;
    }
    EXPECT_LT(base_mean / count, gt_mean / count);          // biased low
    EXPECT_GT(map_mean / count, base_mean / count);          // less biased
  }
}

TEST(Veritas, ProducesRequestedSampleCount) {
  const auto gtbw = trace::BandwidthTrace::constant(3.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 40);
  VeritasConfig cfg;
  cfg.num_samples = 7;
  const Veritas veritas(cfg);
  EXPECT_EQ(veritas.infer(log).samples.size(), 7u);
}

TEST(Veritas, DeterministicInSeed) {
  const auto gtbw = trace::BandwidthTrace::constant(3.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 40);
  const Veritas a, b;
  const VeritasResult ra = a.infer(log);
  const VeritasResult rb = b.infer(log);
  for (std::size_t k = 0; k < ra.samples.size(); ++k) {
    EXPECT_DOUBLE_EQ(ra.samples[k].mean_abs_diff_mbps(rb.samples[k]), 0.0);
  }
}

TEST(Veritas, DifferentSeedsGiveDifferentSamples) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 41);
  const sim::SessionLog log = testing::deployed_log(traces[0], 100);
  VeritasConfig cfg_a;
  cfg_a.seed = 1;
  VeritasConfig cfg_b;
  cfg_b.seed = 2;
  const VeritasResult ra = Veritas(cfg_a).infer(log);
  const VeritasResult rb = Veritas(cfg_b).infer(log);
  double diff = 0.0;
  for (std::size_t k = 0; k < ra.samples.size(); ++k) {
    diff += ra.samples[k].mean_abs_diff_mbps(rb.samples[k]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(Veritas, MapStatesMatchTraceAtChunkStarts) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 60);
  const Veritas veritas;
  const VeritasResult result = veritas.infer(log);
  ASSERT_EQ(result.map_states_mbps.size(), log.size());
  // The MAP trace at each chunk's start window agrees with the per-chunk
  // MAP state (up to later chunks overwriting the same window).
  const auto& chunks = log.chunks;
  for (std::size_t n = 0; n + 1 < chunks.size(); ++n) {
    const bool same_window =
        std::floor(chunks[n].start_s / 5.0) ==
        std::floor(chunks[n + 1].start_s / 5.0);
    if (!same_window) {
      EXPECT_NEAR(result.map_trace.at(chunks[n].start_s),
                  result.map_states_mbps[n], 1e-9);
    }
  }
}

TEST(Veritas, PosteriorMarginalsShapeAndNormalization) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 50);
  const Veritas veritas;
  const VeritasResult result = veritas.infer(log);
  EXPECT_EQ(result.posterior_marginals.rows(), log.size());
  for (std::size_t n = 0; n < result.posterior_marginals.rows(); ++n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < result.posterior_marginals.cols(); ++i) {
      sum += result.posterior_marginals(n, i);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(Veritas, PredictNextMatchesSequenceSweep) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 43);
  const sim::SessionLog log = testing::deployed_log(traces[0], 60);
  const Veritas veritas;
  const auto sweep = veritas.predict_sequence(log);
  ASSERT_EQ(sweep.size(), log.size());
  // Spot-check a few positions against the one-shot API.
  for (const std::size_t n : {5ul, 20ul, 40ul}) {
    const auto one = veritas.predict_next(
        log.prefix(n), log.chunks[n].start_s, log.chunks[n].tcp_at_start,
        log.chunks[n].size_bytes);
    EXPECT_NEAR(one.download_time_s, sweep[n].download_time_s, 1e-9);
    EXPECT_NEAR(one.expected_gtbw_mbps, sweep[n].expected_gtbw_mbps, 1e-9);
  }
}

TEST(Veritas, PredictionsArePositiveAndFinite) {
  const auto traces = trace::make_traces(trace::TraceFamily::kFccLike, 1, 47);
  const sim::SessionLog log = testing::deployed_log(traces[0], 80);
  const Veritas veritas;
  for (const auto& p : veritas.predict_sequence(log)) {
    EXPECT_GT(p.expected_gtbw_mbps, 0.0);
    EXPECT_GT(p.throughput_mbps, 0.0);
    EXPECT_TRUE(std::isfinite(p.download_time_s));
  }
}

TEST(Veritas, PredictionTracksConstantBandwidth) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 100);
  const Veritas veritas;
  const auto sweep = veritas.predict_sequence(log);
  // After warm-up, predicted download times track the truth within 2x.
  for (std::size_t n = 20; n < log.size(); ++n) {
    const double truth = log.chunks[n].download_time_s();
    EXPECT_LT(sweep[n].download_time_s, 3.0 * truth + 0.2) << "chunk " << n;
    EXPECT_GT(sweep[n].download_time_s, truth / 3.0 - 0.2) << "chunk " << n;
  }
}

TEST(Veritas, ConfigValidation) {
  VeritasConfig bad;
  bad.num_samples = 0;
  EXPECT_THROW(Veritas{bad}, veritas::ContractViolation);
  bad = VeritasConfig{};
  bad.sigma_mbps = -1.0;
  EXPECT_THROW(Veritas{bad}, veritas::ContractViolation);
}

TEST(Veritas, UniformPriorStillWorks) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 60);
  VeritasConfig cfg;
  cfg.prior = TransitionPrior::kUniform;
  const VeritasResult result = Veritas(cfg).infer(log);
  EXPECT_LT(gtbw.mean_abs_diff_mbps(result.map_trace), 1.5);
}

TEST(Veritas, TridiagonalBeatsUniformOnSmoothTraces) {
  // The temporal prior is what lets Veritas extrapolate through
  // uncertain (small-chunk) stretches. On smoothly drifting bandwidth
  // (the EHMM's own structural assumption) the tridiagonal prior must
  // beat the memoryless uniform prior on average. (On discontinuous
  // square waves the smoothness prior lags at jumps — a real trade-off
  // exercised by bench_ablate_transition.)
  trace::MarkovTraceConfig cfg;
  cfg.min_mbps = 3.0;
  cfg.max_mbps = 6.0;
  cfg.stay_prob = 0.6;
  cfg.step_prob = 0.4;  // pure +-ε random walk: no jumps
  double tri_total = 0.0, uni_total = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto gtbw = trace::markov_trace(cfg, seed);
    const sim::SessionLog log = testing::deployed_log(gtbw, 150);
    VeritasConfig tri_cfg;
    VeritasConfig uni_cfg;
    uni_cfg.prior = TransitionPrior::kUniform;
    tri_total += gtbw.mean_abs_diff_mbps(Veritas(tri_cfg).infer(log).map_trace);
    uni_total += gtbw.mean_abs_diff_mbps(Veritas(uni_cfg).infer(log).map_trace);
  }
  EXPECT_LE(tri_total, uni_total + 0.05);
}

}  // namespace
}  // namespace veritas::core
