#include "core/emission_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/test_helpers.hpp"
#include "math/distributions.hpp"
#include "net/throughput_estimator.hpp"
#include "util/expects.hpp"

namespace veritas::core {
namespace {

using testing::warm_observation;

TEST(Observations, ExtractedFromLog) {
  const auto gtbw = trace::BandwidthTrace::constant(4.0, 600.0, 5.0);
  const sim::SessionLog log = testing::deployed_log(gtbw, 20);
  const auto obs = observations_from_log(log);
  ASSERT_EQ(obs.size(), log.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    EXPECT_DOUBLE_EQ(obs[i].throughput_mbps, log.chunks[i].throughput_mbps());
    EXPECT_DOUBLE_EQ(obs[i].size_bytes, log.chunks[i].size_bytes);
    EXPECT_DOUBLE_EQ(obs[i].start_s, log.chunks[i].start_s);
  }
}

TEST(Observations, RejectEmptyLog) {
  sim::SessionLog log;
  EXPECT_THROW(observations_from_log(log), veritas::ContractViolation);
}

TEST(Observations, RejectNonIncreasingStarts) {
  sim::SessionLog log;
  sim::ChunkLog a;
  a.start_s = 1.0;
  a.end_s = 2.0;
  a.size_bytes = 1000;
  sim::ChunkLog b = a;  // same start
  log.chunks = {a, b};
  EXPECT_THROW(observations_from_log(log), veritas::ContractViolation);
}

TEST(EmissionModel, MeanMatchesEstimator) {
  const EmissionModel em(0.5);
  const ChunkObservation obs = warm_observation(0.0, 3.0);
  EXPECT_DOUBLE_EQ(
      em.mean_throughput_mbps(4.0, obs),
      net::estimate_throughput_mbps(4.0, obs.tcp, obs.size_bytes));
}

TEST(EmissionModel, LogProbIsGaussianAroundMean) {
  const EmissionModel em(0.5);
  const ChunkObservation obs = warm_observation(0.0, 3.0);
  const double mean = em.mean_throughput_mbps(4.0, obs);
  EXPECT_DOUBLE_EQ(em.log_prob(4.0, obs),
                   math::log_normal_pdf(3.0, mean, 0.5));
}

TEST(EmissionModel, TrueBandwidthIsMostLikelyForBigChunks) {
  // A warm connection downloading a large chunk observes Y ~ GTBW, so
  // the emission should peak at (or next to) the true value.
  const EmissionModel em(0.5);
  const ChunkObservation obs = warm_observation(0.0, 4.0, 8e6);
  double best_c = -1.0, best_lp = -1e300;
  for (double c = 0.5; c <= 10.0; c += 0.5) {
    const double lp = em.log_prob(c, obs);
    if (lp > best_lp) {
      best_lp = lp;
      best_c = c;
    }
  }
  EXPECT_NEAR(best_c, 4.0, 0.51);
}

TEST(EmissionModel, SmallChunkLikelihoodIsFlatAboveThreshold) {
  // For a chunk far below the BDP, throughput is RTT-bound: candidates
  // above some level are indistinguishable (the paper's uncertainty).
  const EmissionModel em(0.5);
  ChunkObservation obs = warm_observation(0.0, 0.2, 2000.0);
  const double lp8 = em.log_prob(8.0, obs);
  const double lp9 = em.log_prob(9.0, obs);
  EXPECT_NEAR(lp8, lp9, 1e-9);
}

TEST(EmissionModel, SigmaControlsSharpness) {
  const EmissionModel narrow(0.1);
  const EmissionModel wide(2.0);
  const ChunkObservation obs = warm_observation(0.0, 4.0, 8e6);
  // Off-mean candidate: the narrow model punishes it much harder.
  EXPECT_LT(narrow.log_prob(6.0, obs), wide.log_prob(6.0, obs));
}

TEST(EmissionModel, NoTcpStateVariantDiffersAfterIdle) {
  const EmissionModel full(0.5, net::TcpConfig{},
                           EmissionModel::Estimator::kFullTcp);
  const EmissionModel ablated(0.5, net::TcpConfig{},
                              EmissionModel::Estimator::kNoTcpState);
  ChunkObservation obs = warm_observation(0.0, 2.0, 250000.0);
  obs.tcp.cwnd_segments = 40.0;
  obs.tcp.last_send_gap_s = 3.0;  // idle: SSR matters
  EXPECT_NE(full.mean_throughput_mbps(6.0, obs),
            ablated.mean_throughput_mbps(6.0, obs));
}

TEST(EmissionModel, RejectsNonPositiveSigma) {
  EXPECT_THROW(EmissionModel(0.0), veritas::ContractViolation);
}

TEST(EmissionModel, MultiWindowSharesEstimatorF) {
  // The per-observation mean is identical; the span-averaging happens in
  // Ehmm::emission_log_probs, not here.
  const EmissionModel single(0.5);
  const EmissionModel multi(0.5, net::TcpConfig{},
                            EmissionModel::Estimator::kMultiWindow);
  const ChunkObservation obs = warm_observation(0.0, 3.0);
  EXPECT_DOUBLE_EQ(single.mean_throughput_mbps(4.0, obs),
                   multi.mean_throughput_mbps(4.0, obs));
}

TEST(EmissionModel, MultiWindowEmissionMatchesSingleForShortDownloads) {
  // A download far shorter than delta spans one window: the multi-window
  // correction must be a no-op.
  using testing::small_ehmm;
  StateSpace space(1.0, 3.0);
  TransitionModel transition = TransitionModel::tridiagonal(space.size());
  Ehmm single(space, transition, EmissionModel(0.5), 5.0);
  Ehmm multi(space, transition,
             EmissionModel(0.5, net::TcpConfig{},
                           EmissionModel::Estimator::kMultiWindow),
             5.0);
  // Warm observation: 2 MB at 4 Mbps takes ~4 s < 5 s... use a smaller
  // chunk so the estimated span is well under one window.
  const std::vector<ChunkObservation> obs{warm_observation(0.0, 2.0, 2e5)};
  const math::Matrix a = single.emission_log_probs(obs);
  const math::Matrix b = multi.emission_log_probs(obs);
  EXPECT_LT(a.max_abs_diff(b), 1e-9);
}

TEST(EmissionModel, MultiWindowActivatesForLongDownloads) {
  // For a download spanning several windows the span-averaged candidate
  // differs from the start value at the edges of the state space (the
  // expected average regresses toward the interior), so the emission
  // matrix must change; in the exact middle of a symmetric chain the
  // drift cancels.
  StateSpace space(1.0, 3.0);
  TransitionModel transition = TransitionModel::tridiagonal(space.size(), 0.5);
  EmissionModel single_em(0.5);
  EmissionModel multi_em(0.5, net::TcpConfig{},
                         EmissionModel::Estimator::kMultiWindow);
  Ehmm single(space, transition, single_em, 5.0);
  Ehmm multi(space, transition, multi_em, 5.0);
  // 8 MB at ~3 Mbps -> ~21 s -> ~5 windows.
  const std::vector<ChunkObservation> obs{
      testing::warm_observation(0.0, 2.8, 8e6)};
  const std::size_t top = space.size() - 1;
  EXPECT_GT(std::abs(multi.emission_log_probs(obs)(0, top) -
                     single.emission_log_probs(obs)(0, top)),
            1e-6);
}

}  // namespace
}  // namespace veritas::core
