#include "core/ehmm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/test_helpers.hpp"
#include "util/expects.hpp"

namespace veritas::core {
namespace {

using testing::small_ehmm;
using testing::warm_observation;

// Brute force: enumerate every state sequence and compute
// P(seq, obs) = u[s0] e0(s0) Π A^Δn(s_{n-1}, s_n) e_n(s_n).
struct BruteForce {
  std::vector<std::size_t> best_path;
  double best_log_joint = -1e300;
  double log_evidence = 0.0;           // log Σ_seq P(seq, obs)
  math::Matrix marginals;              // N x K posterior
  std::vector<math::Matrix> pairs;     // N-1 pair posteriors
};

BruteForce brute_force(const Ehmm& ehmm,
                       const std::vector<ChunkObservation>& obs) {
  const std::size_t n = obs.size();
  const std::size_t k = ehmm.space().size();
  const math::Matrix log_e = ehmm.emission_log_probs(obs);
  const auto deltas = ehmm.window_deltas(obs);
  const auto initial = ehmm.transition().initial();

  BruteForce result;
  result.marginals = math::Matrix(n, k, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    result.pairs.push_back(math::Matrix(k, k, 0.0));
  }

  std::vector<std::size_t> seq(n, 0);
  double total = 0.0;
  for (;;) {
    double log_joint = std::log(initial[seq[0]]) + log_e(0, seq[0]);
    for (std::size_t t = 1; t < n; ++t) {
      const double a = ehmm.transition().power(deltas[t])(seq[t - 1], seq[t]);
      log_joint += (a > 0 ? std::log(a) : -1e300) + log_e(t, seq[t]);
    }
    const double p = std::exp(log_joint);
    total += p;
    for (std::size_t t = 0; t < n; ++t) result.marginals(t, seq[t]) += p;
    for (std::size_t t = 0; t + 1 < n; ++t) {
      result.pairs[t](seq[t], seq[t + 1]) += p;
    }
    if (log_joint > result.best_log_joint) {
      result.best_log_joint = log_joint;
      result.best_path = seq;
    }
    // Next sequence (odometer).
    std::size_t pos = 0;
    while (pos < n && ++seq[pos] == k) {
      seq[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  result.log_evidence = std::log(total);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t i = 0; i < k; ++i) result.marginals(t, i) /= total;
  }
  for (auto& pair : result.pairs) {
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) pair(i, j) /= total;
    }
  }
  return result;
}

std::vector<ChunkObservation> small_sequence() {
  // Starts at 0, 6, 12, 14, 30 s with δ=5: windows 0, 1, 2, 2, 6 so
  // Δ = -, 1, 1, 0, 4.
  return {warm_observation(0.0, 1.1), warm_observation(6.0, 1.9),
          warm_observation(12.0, 2.2), warm_observation(14.0, 1.8),
          warm_observation(30.0, 0.4)};
}

TEST(Ehmm, WindowDeltasFromStartTimes) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = small_sequence();
  const auto deltas = ehmm.window_deltas(obs);
  ASSERT_EQ(deltas.size(), 5u);
  EXPECT_EQ(deltas[0], 0u);
  EXPECT_EQ(deltas[1], 1u);
  EXPECT_EQ(deltas[2], 1u);
  EXPECT_EQ(deltas[3], 0u);
  EXPECT_EQ(deltas[4], 4u);
}

TEST(Ehmm, WindowOfUsesDelta) {
  const Ehmm ehmm = small_ehmm();
  EXPECT_EQ(ehmm.window_of(0.0), 0u);
  EXPECT_EQ(ehmm.window_of(4.99), 0u);
  EXPECT_EQ(ehmm.window_of(5.0), 1u);
  EXPECT_EQ(ehmm.window_of(47.0), 9u);
}

TEST(Ehmm, EmissionMatrixShape) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = small_sequence();
  const math::Matrix logs = ehmm.emission_log_probs(obs);
  EXPECT_EQ(logs.rows(), obs.size());
  EXPECT_EQ(logs.cols(), ehmm.space().size());
  for (std::size_t n = 0; n < logs.rows(); ++n) {
    for (std::size_t i = 0; i < logs.cols(); ++i) {
      EXPECT_TRUE(std::isfinite(logs(n, i)));
    }
  }
}

TEST(Ehmm, ViterbiMatchesBruteForce) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = small_sequence();
  const auto viterbi = ehmm.viterbi(obs);
  const auto brute = brute_force(ehmm, obs);
  EXPECT_EQ(viterbi.states, brute.best_path);
  EXPECT_NEAR(viterbi.log_likelihood, brute.best_log_joint, 1e-9);
}

TEST(Ehmm, ForwardBackwardEvidenceMatchesBruteForce) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = small_sequence();
  const auto fb = ehmm.forward_backward(obs);
  const auto brute = brute_force(ehmm, obs);
  EXPECT_NEAR(fb.log_likelihood, brute.log_evidence, 1e-9);
}

TEST(Ehmm, PosteriorMarginalsMatchBruteForce) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = small_sequence();
  const auto fb = ehmm.forward_backward(obs);
  const auto brute = brute_force(ehmm, obs);
  EXPECT_LT(fb.gamma.max_abs_diff(brute.marginals), 1e-9);
}

TEST(Ehmm, PairPosteriorsMatchBruteForce) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = small_sequence();
  Ehmm::Scratch scratch;
  const auto fb = ehmm.forward_backward(obs, scratch);
  const auto brute = brute_force(ehmm, obs);
  ASSERT_EQ(fb.pair_totals.size(), brute.pairs.size());
  for (std::size_t t = 0; t < fb.pair_totals.size(); ++t) {
    const math::Matrix pair = ehmm.pair_posterior(fb, scratch, t);
    EXPECT_LT(pair.max_abs_diff(brute.pairs[t]), 1e-9) << "pair " << t;
  }
}

TEST(Ehmm, GammaRowsSumToOne) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = small_sequence();
  const auto fb = ehmm.forward_backward(obs);
  for (std::size_t n = 0; n < fb.gamma.rows(); ++n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < fb.gamma.cols(); ++i) sum += fb.gamma(n, i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Ehmm, PairPosteriorMarginalizesToGamma) {
  const Ehmm ehmm = small_ehmm();
  const auto obs = small_sequence();
  Ehmm::Scratch scratch;
  const auto fb = ehmm.forward_backward(obs, scratch);
  const std::size_t k = ehmm.space().size();
  for (std::size_t t = 0; t + 1 < obs.size(); ++t) {
    const math::Matrix pair = ehmm.pair_posterior(fb, scratch, t);
    for (std::size_t i = 0; i < k; ++i) {
      double row_sum = 0.0;
      for (std::size_t j = 0; j < k; ++j) row_sum += pair(i, j);
      EXPECT_NEAR(row_sum, fb.gamma(t, i), 1e-9);
    }
    for (std::size_t j = 0; j < k; ++j) {
      double col_sum = 0.0;
      for (std::size_t i = 0; i < k; ++i) col_sum += pair(i, j);
      EXPECT_NEAR(col_sum, fb.gamma(t + 1, j), 1e-9);
    }
  }
}

TEST(Ehmm, SingleObservationPosterior) {
  const Ehmm ehmm = small_ehmm();
  const std::vector<ChunkObservation> obs{warm_observation(0.0, 2.0)};
  const auto fb = ehmm.forward_backward(obs);
  EXPECT_EQ(fb.pair_totals.size(), 0u);
  // Posterior peaks at the true value (2 Mbps = state 2).
  std::size_t best = 0;
  for (std::size_t i = 1; i < ehmm.space().size(); ++i) {
    if (fb.gamma(0, i) > fb.gamma(0, best)) best = i;
  }
  EXPECT_EQ(best, 2u);
  const auto viterbi = ehmm.viterbi(obs);
  EXPECT_EQ(viterbi.states[0], 2u);
}

TEST(Ehmm, ViterbiScoresColumnArgmaxMatchesPrefixRun) {
  // The scores matrix must make every prefix's MAP end state available:
  // argmax of column n equals the final Viterbi state of the truncated
  // observation sequence.
  const Ehmm ehmm = small_ehmm();
  const auto obs = small_sequence();
  const auto full = ehmm.viterbi(obs);
  for (std::size_t n = 1; n <= obs.size(); ++n) {
    const std::vector<ChunkObservation> prefix(obs.begin(), obs.begin() + n);
    const auto partial = ehmm.viterbi(prefix);
    std::size_t best = 0;
    for (std::size_t i = 1; i < ehmm.space().size(); ++i) {
      if (full.scores(n - 1, i) > full.scores(n - 1, best)) best = i;
    }
    EXPECT_EQ(best, partial.states.back()) << "prefix " << n;
  }
}

TEST(Ehmm, ExtremeObservationsDoNotProduceNan) {
  const Ehmm ehmm = small_ehmm(0.05);  // very sharp emissions
  std::vector<ChunkObservation> obs;
  for (int i = 0; i < 20; ++i) {
    // Observations wildly inconsistent with every state.
    obs.push_back(warm_observation(double(i) * 5.0, (i % 2) ? 0.01 : 3.0));
  }
  const auto fb = ehmm.forward_backward(obs);
  EXPECT_TRUE(std::isfinite(fb.log_likelihood) || fb.log_likelihood < 0);
  for (std::size_t n = 0; n < fb.gamma.rows(); ++n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < fb.gamma.cols(); ++i) {
      EXPECT_FALSE(std::isnan(fb.gamma(n, i)));
      sum += fb.gamma(n, i);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(Ehmm, RejectsEmptyObservations) {
  const Ehmm ehmm = small_ehmm();
  const std::vector<ChunkObservation> empty;
  EXPECT_THROW(ehmm.viterbi(empty), veritas::ContractViolation);
  EXPECT_THROW(ehmm.forward_backward(empty), veritas::ContractViolation);
}

TEST(Ehmm, RejectsMismatchedStateCount) {
  StateSpace space(1.0, 3.0);  // 4 states
  TransitionModel transition = TransitionModel::tridiagonal(5);
  EmissionModel emission(0.5);
  EXPECT_THROW(Ehmm(space, transition, emission, 5.0),
               veritas::ContractViolation);
}

// Property: Viterbi log-likelihood never exceeds total evidence, and both
// agree for a near-deterministic model.
class ViterbiVsEvidence : public ::testing::TestWithParam<double> {};

TEST_P(ViterbiVsEvidence, JointBelowEvidence) {
  const Ehmm ehmm = small_ehmm(GetParam());
  const auto obs = small_sequence();
  const auto viterbi = ehmm.viterbi(obs);
  const auto fb = ehmm.forward_backward(obs);
  EXPECT_LE(viterbi.log_likelihood, fb.log_likelihood + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ViterbiVsEvidence,
                         ::testing::Values(0.1, 0.25, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace veritas::core
