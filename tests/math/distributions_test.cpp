#include "math/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/expects.hpp"

namespace veritas::math {
namespace {

TEST(NormalPdf, PeakValue) {
  // N(0; 0, 1) = 1/sqrt(2*pi).
  EXPECT_NEAR(normal_pdf(0.0, 0.0, 1.0), 0.3989422804014327, 1e-12);
}

TEST(NormalPdf, Symmetry) {
  EXPECT_DOUBLE_EQ(normal_pdf(1.0, 0.0, 1.0), normal_pdf(-1.0, 0.0, 1.0));
}

TEST(NormalPdf, LogConsistency) {
  const double x = 2.3, m = 1.0, s = 0.7;
  EXPECT_NEAR(std::exp(log_normal_pdf(x, m, s)), normal_pdf(x, m, s), 1e-12);
}

TEST(NormalPdf, ScalesWithSigma) {
  EXPECT_NEAR(normal_pdf(0.0, 0.0, 2.0), 0.3989422804014327 / 2.0, 1e-12);
}

TEST(NormalPdf, RejectsNonPositiveSigma) {
  EXPECT_THROW(log_normal_pdf(0.0, 0.0, 0.0), veritas::ContractViolation);
  EXPECT_THROW(log_normal_pdf(0.0, 0.0, -1.0), veritas::ContractViolation);
}

TEST(LogSumExp, MatchesDirectComputation) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const double direct = std::log(std::exp(0.0) + std::exp(1.0) + std::exp(2.0));
  EXPECT_NEAR(log_sum_exp(xs), direct, 1e-12);
}

TEST(LogSumExp, StableForLargeValues) {
  const std::vector<double> xs{1000.0, 1000.0};
  EXPECT_NEAR(log_sum_exp(xs), 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExp, StableForSmallValues) {
  const std::vector<double> xs{-1000.0, -1000.0};
  EXPECT_NEAR(log_sum_exp(xs), -1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExp, EmptyIsNegInf) {
  const std::vector<double> xs;
  EXPECT_EQ(log_sum_exp(xs), -std::numeric_limits<double>::infinity());
}

TEST(LogSumExp, AllNegInf) {
  const std::vector<double> xs(3, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(log_sum_exp(xs), -std::numeric_limits<double>::infinity());
}

TEST(Normalize, SumsToOne) {
  std::vector<double> w{1.0, 3.0};
  const double sum = normalize(w);
  EXPECT_DOUBLE_EQ(sum, 4.0);
  EXPECT_DOUBLE_EQ(w[0], 0.25);
  EXPECT_DOUBLE_EQ(w[1], 0.75);
}

TEST(Normalize, ZeroSumFallsBackToUniform) {
  std::vector<double> w{0.0, 0.0, 0.0};
  const double sum = normalize(w);
  EXPECT_DOUBLE_EQ(sum, 0.0);
  for (const double v : w) EXPECT_DOUBLE_EQ(v, 1.0 / 3.0);
}

TEST(Normalize, RejectsNegative) {
  std::vector<double> w{0.5, -0.5};
  EXPECT_THROW(normalize(w), veritas::ContractViolation);
}

TEST(Entropy, UniformIsLogN) {
  const std::vector<double> p{0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(entropy(p), std::log(4.0), 1e-12);
}

TEST(Entropy, DegenerateIsZero) {
  const std::vector<double> p{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(entropy(p), 0.0);
}

TEST(Expectation, WeightedMean) {
  const std::vector<double> values{1.0, 2.0, 3.0};
  const std::vector<double> probs{0.2, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(expectation(values, probs), 2.3);
}

TEST(Expectation, RejectsSizeMismatch) {
  const std::vector<double> values{1.0};
  const std::vector<double> probs{0.5, 0.5};
  EXPECT_THROW(expectation(values, probs), veritas::ContractViolation);
}

}  // namespace
}  // namespace veritas::math
