#include "math/matrix.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

namespace veritas::math {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 1), 4);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), veritas::ContractViolation);
}

TEST(Matrix, IdentityProduct) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix i = Matrix::identity(2);
  EXPECT_DOUBLE_EQ((a * i).max_abs_diff(a), 0.0);
  EXPECT_DOUBLE_EQ((i * a).max_abs_diff(a), 0.0);
}

TEST(Matrix, ProductKnownValues) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, ProductShapeMismatchRejected) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, veritas::ContractViolation);
}

TEST(Matrix, NonSquareProduct) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}});       // 1x3
  const Matrix b = Matrix::from_rows({{1}, {2}, {3}});   // 3x1
  const Matrix c = a * b;
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(0, 0), 14);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const std::vector<double> v{1.0, 1.0};
  const auto out = a * std::span<const double>(v);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(Matrix, Transpose) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
}

TEST(Matrix, RowView) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const auto row = a.row(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 3);
}

TEST(Matrix, IsRowStochastic) {
  EXPECT_TRUE(Matrix::from_rows({{0.5, 0.5}, {0.1, 0.9}}).is_row_stochastic());
  EXPECT_FALSE(Matrix::from_rows({{0.5, 0.6}, {0.1, 0.9}}).is_row_stochastic());
  EXPECT_FALSE(Matrix::from_rows({{1.5, -0.5}, {0.1, 0.9}}).is_row_stochastic());
  EXPECT_FALSE(Matrix(2, 3, 0.5).is_row_stochastic());  // non-square
}

TEST(MatrixPower, ZeroGivesIdentity) {
  const Matrix a = Matrix::from_rows({{0.5, 0.5}, {0.2, 0.8}});
  EXPECT_DOUBLE_EQ(matrix_power(a, 0).max_abs_diff(Matrix::identity(2)), 0.0);
}

TEST(MatrixPower, OneGivesSame) {
  const Matrix a = Matrix::from_rows({{0.5, 0.5}, {0.2, 0.8}});
  EXPECT_DOUBLE_EQ(matrix_power(a, 1).max_abs_diff(a), 0.0);
}

TEST(MatrixPower, MatchesNaiveForSmallPowers) {
  const Matrix a = Matrix::from_rows({{0.9, 0.1, 0.0},
                                      {0.05, 0.9, 0.05},
                                      {0.0, 0.1, 0.9}});
  Matrix naive = Matrix::identity(3);
  for (std::size_t p = 0; p <= 13; ++p) {
    EXPECT_LT(matrix_power(a, p).max_abs_diff(naive), 1e-12) << "power " << p;
    naive = naive * a;
  }
}

TEST(MatrixPower, StochasticStaysStochastic) {
  const Matrix a = Matrix::from_rows({{0.8, 0.2, 0.0},
                                      {0.1, 0.8, 0.1},
                                      {0.0, 0.2, 0.8}});
  for (std::size_t p : {2u, 7u, 32u, 101u}) {
    EXPECT_TRUE(matrix_power(a, p).is_row_stochastic(1e-9)) << "power " << p;
  }
}

TEST(MatrixPower, ConvergesToStationary) {
  // Symmetric chain converges to the uniform distribution.
  const Matrix a = Matrix::from_rows({{0.5, 0.5}, {0.5, 0.5}});
  const Matrix p = matrix_power(a, 50);
  EXPECT_NEAR(p(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(p(1, 0), 0.5, 1e-12);
}

TEST(Matrix, ResizeReshapesAndRefills) {
  Matrix m(2, 3, 1.0);
  m(1, 2) = 9.0;
  m.resize(3, 2, 0.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) EXPECT_EQ(m(r, c), 0.5);
  }
  EXPECT_THROW(m.resize(0, 2), veritas::ContractViolation);
}

TEST(Matrix, MultiplyIntoMatchesOperator) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {0.0, -1.0}});
  const Matrix b = Matrix::from_rows({{2.0, 0.5, 1.0}, {-1.0, 3.0, 0.0}});
  Matrix out(1, 1, 7.0);  // wrong shape and stale data: must be reset
  a.multiply_into(b, out);
  EXPECT_EQ(out.max_abs_diff(a * b), 0.0);
  Matrix aliased = a;
  EXPECT_THROW(aliased.multiply_into(b, aliased), veritas::ContractViolation);
}

}  // namespace
}  // namespace veritas::math
