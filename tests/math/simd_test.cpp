// Property tests for the SIMD kernel layer (math/simd_kernels.hpp):
// the vectorized exp/log approximations against libm across the value
// ranges the EHMM feeds them, the batched emission log-pdf against the
// scalar math::log_normal_pdf (bitwise — the kernel replicates the
// scalar operation order), and the dispatch/override machinery.
#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "math/distributions.hpp"
#include "math/matrix.hpp"
#include "math/simd_kernels.hpp"

namespace sk = veritas::math::simd_kernels;
namespace math = veritas::math;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool simd_available() { return sk::simd_ops() != nullptr; }

std::vector<double> exp_via(const sk::KernelOps& ops,
                            const std::vector<double>& xs) {
  std::vector<double> out(xs.size(), 0.0);
  ops.exp_rows(xs.data(), 0.0, xs.size(), out.data());
  return out;
}

std::vector<double> log_via(const sk::KernelOps& ops,
                            const std::vector<double>& xs) {
  std::vector<double> out(xs.size(), 0.0);
  ops.log_rows(xs.data(), xs.size(), out.data());
  return out;
}

TEST(SimdDispatch, ScalarTableIsAlwaysPresent) {
  EXPECT_STREQ(sk::scalar_ops().name, "scalar");
  EXPECT_NE(sk::active_ops().name, nullptr);
}

TEST(SimdDispatch, ScopedModeForcesScalar) {
  const sk::ScopedMode scoped(sk::Mode::kForceScalar);
  EXPECT_STREQ(sk::active_ops().name, "scalar");
  EXPECT_STREQ(sk::backend_name(), "scalar");
}

TEST(SimdDispatch, ScopedModeRestores) {
  const sk::Mode before = sk::mode();
  {
    const sk::ScopedMode scoped(sk::Mode::kForceScalar);
    EXPECT_EQ(sk::mode(), sk::Mode::kForceScalar);
  }
  EXPECT_EQ(sk::mode(), before);
}

TEST(SimdExp, ScalarTableMatchesLibmBitwise) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-700.0, 700.0);
  std::vector<double> xs(257);
  for (double& x : xs) x = dist(rng);
  const std::vector<double> got = exp_via(sk::scalar_ops(), xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(got[i], std::exp(xs[i])) << "x=" << xs[i];
  }
}

// The vectorized exp across the emission shift range (log-probs minus
// their row max: always <= 0, typically a few hundred at most) and the
// full safely-representable range. Cephes-style rational approximation:
// a couple of ulp.
TEST(SimdExp, VectorMatchesLibmWithinTolerance) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD table in this build";
  std::mt19937_64 rng(11);
  std::vector<double> xs;
  std::uniform_real_distribution<double> emission(-500.0, 0.0);
  std::uniform_real_distribution<double> wide(-708.0, 709.0);
  for (int i = 0; i < 20000; ++i) xs.push_back(emission(rng));
  for (int i = 0; i < 20000; ++i) xs.push_back(wide(rng));
  const std::vector<double> got = exp_via(*sk::simd_ops(), xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double want = std::exp(xs[i]);
    EXPECT_LE(std::abs(got[i] - want), 5e-15 * want)
        << "x=" << xs[i] << " got=" << got[i] << " want=" << want;
  }
}

TEST(SimdExp, VectorSpecialValues) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD table in this build";
  const std::vector<double> xs = {0.0,
                                  -0.0,
                                  1.0,
                                  -1.0,
                                  -kInf,
                                  kInf,
                                  std::nan(""),
                                  710.0,
                                  1000.0,
                                  -800.0,
                                  -1e9};
  const std::vector<double> got = exp_via(*sk::simd_ops(), xs);
  EXPECT_EQ(got[0], 1.0);  // exact at 0
  EXPECT_EQ(got[1], 1.0);
  EXPECT_NEAR(got[2], std::exp(1.0), 1e-15);
  EXPECT_NEAR(got[3], std::exp(-1.0), 1e-16);
  EXPECT_EQ(got[4], 0.0);   // exp(-inf)
  EXPECT_EQ(got[5], kInf);  // exp(+inf)
  EXPECT_TRUE(std::isnan(got[6]));
  EXPECT_EQ(got[7], kInf);  // overflow
  EXPECT_EQ(got[8], kInf);
  EXPECT_EQ(got[9], 0.0);  // flushed underflow
  EXPECT_EQ(got[10], 0.0);
}

// Inputs in [-745, -708) flush to zero where libm returns subnormals;
// the absolute error is below every tolerance the posteriors care about.
TEST(SimdExp, VectorFlushesDeepUnderflowToZero) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD table in this build";
  const std::vector<double> xs = {-709.0, -720.0, -740.0};
  const std::vector<double> got = exp_via(*sk::simd_ops(), xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_GE(got[i], 0.0);
    EXPECT_LE(got[i], 1e-307);
  }
}

TEST(SimdLog, ScalarTableMatchesLibmBitwise) {
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> dist(1e-12, 1e12);
  std::vector<double> xs(257);
  for (double& x : xs) x = dist(rng);
  const std::vector<double> got = log_via(sk::scalar_ops(), xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(got[i], std::log(xs[i])) << "x=" << xs[i];
  }
}

TEST(SimdLog, VectorMatchesLibmWithinTolerance) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD table in this build";
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> exponent(-307.0, 307.0);
  std::uniform_real_distribution<double> near_one(0.25, 4.0);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(std::pow(10.0, exponent(rng)));
  for (int i = 0; i < 20000; ++i) xs.push_back(near_one(rng));
  const std::vector<double> got = log_via(*sk::simd_ops(), xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double want = std::log(xs[i]);
    const double tol = std::max(4e-15 * std::abs(want), 4e-16);
    EXPECT_LE(std::abs(got[i] - want), tol)
        << "x=" << xs[i] << " got=" << got[i] << " want=" << want;
  }
}

TEST(SimdLog, VectorSpecialValues) {
  if (!simd_available()) GTEST_SKIP() << "no SIMD table in this build";
  const double subnormal = 5e-320;
  const std::vector<double> xs = {1.0,   0.0,  -1.0, kInf,
                                  std::nan(""), subnormal, 2.0, 0.5};
  const std::vector<double> got = log_via(*sk::simd_ops(), xs);
  EXPECT_EQ(got[0], 0.0);  // exact at 1
  EXPECT_EQ(got[1], -kInf);
  EXPECT_TRUE(std::isnan(got[2]));
  EXPECT_EQ(got[3], kInf);
  EXPECT_TRUE(std::isnan(got[4]));
  EXPECT_NEAR(got[5], std::log(subnormal), 1e-12);
  EXPECT_NEAR(got[6], std::log(2.0), 1e-15);
  EXPECT_NEAR(got[7], std::log(0.5), 1e-15);
}

// The batched emission kernel replicates log_normal_pdf's operation
// order, so scalar kernel, SIMD kernel (vector body *and* tail path)
// and the plain scalar function agree bitwise.
TEST(SimdEmissionRow, MatchesLogNormalPdfBitwise) {
  std::mt19937_64 rng(19);
  std::uniform_real_distribution<double> mean_dist(0.0, 10.0);
  for (const std::size_t k : {1u, 3u, 8u, 17u, 21u, 32u}) {
    std::vector<double> means(k);
    for (double& m : means) m = mean_dist(rng);
    const double y = 4.25;
    const double sigma = 0.5;
    std::vector<double> scalar_out(k, 0.0);
    math::log_normal_pdf_rows(
        y, std::span<const double>(means.data(), k), sigma,
        std::span<double>(scalar_out.data(), k));
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(scalar_out[i], math::log_normal_pdf(y, means[i], sigma))
          << "k=" << k << " i=" << i;
    }
    if (!simd_available()) continue;
    std::vector<double> simd_out(math::padded_cols(k), 0.0);
    const double log_sigma = std::log(sigma);
    const double half_log_2pi =
        0.5 * std::log(2.0 * 3.14159265358979323846);
    sk::simd_ops()->emission_log_pdf_row(y, means.data(), k,
                                         math::padded_cols(k), sigma,
                                         log_sigma, half_log_2pi,
                                         simd_out.data());
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(simd_out[i], math::log_normal_pdf(y, means[i], sigma))
          << "k=" << k << " i=" << i;
    }
    for (std::size_t i = k; i < math::padded_cols(k); ++i) {
      EXPECT_EQ(simd_out[i], -kInf) << "pad not -inf at " << i;
    }
  }
}

// math::exp_rows / log_rows route through the active table.
TEST(SimdBatchWrappers, ExpAndLogRows) {
  const std::vector<double> xs = {-2.0, -1.0, 0.0, 0.5, 3.0};
  std::vector<double> e(xs.size(), 0.0);
  std::vector<double> l(xs.size(), 0.0);
  math::exp_rows(xs, e);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(e[i], std::exp(xs[i]), 1e-15 * std::exp(xs[i]) + 1e-18);
  }
  std::vector<double> pos = {0.1, 1.0, 2.5, 100.0, 1e10};
  math::log_rows(pos, l);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_NEAR(l[i], std::log(pos[i]), 1e-14 * std::abs(std::log(pos[i])) + 1e-15);
  }
}

// Padded matrices: logical accessors unaffected, stride rounded up.
TEST(PaddedMatrix, StrideAndLogicalShape) {
  math::Matrix m;
  m.resize_padded(3, 21, -1.0);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 21u);
  EXPECT_EQ(m.col_stride(), 24u);
  m(2, 20) = 7.0;
  EXPECT_EQ(m.row(2).size(), 21u);
  EXPECT_EQ(m.row(2)[20], 7.0);
  // Pad entries hold the fill value.
  EXPECT_EQ(m.row_data(0)[21], -1.0);
  EXPECT_EQ(m.row_data(0)[23], -1.0);
  // Unpadded matrices keep stride == cols.
  math::Matrix plain(2, 5, 0.0);
  EXPECT_EQ(plain.col_stride(), 5u);
  // max_abs_diff works across mixed strides.
  math::Matrix p1(2, 3, 1.0);
  math::Matrix p2;
  p2.resize_padded(2, 3, 1.0);
  EXPECT_EQ(p1.max_abs_diff(p2), 0.0);
  p2(1, 2) = 1.5;
  EXPECT_EQ(p1.max_abs_diff(p2), 0.5);
}

}  // namespace
